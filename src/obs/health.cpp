#include "obs/health.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fth::obs {

namespace {
/// Hot-path instrument pointers (Registry instruments live forever).
Histogram& wait_ms_hist() {
  static Histogram& h = histogram_metric("fault.device_loss.wait_ms");
  return h;
}
Histogram& wait_margin_hist() {
  static Histogram& h = histogram_metric("fault.device_loss.wait_margin");
  return h;
}
}  // namespace

const char* to_string(DeviceState s) noexcept {
  switch (s) {
    case DeviceState::Healthy: return "healthy";
    case DeviceState::Degraded: return "degraded";
    case DeviceState::Lost: return "lost";
  }
  return "?";
}

HealthMonitor::HealthMonitor(int devices, HealthConfig cfg) : cfg_(cfg) {
  if (cfg_.base_timeout_ms <= 0.0) cfg_.base_timeout_ms = 2000.0;
  cfg_.floor_ms = std::clamp(cfg_.floor_ms, 1.0, cfg_.base_timeout_ms);
  if (cfg_.margin_mult < 1.0) cfg_.margin_mult = 1.0;
  if (cfg_.min_samples < 1) cfg_.min_samples = 1;
  if (cfg_.stale_ms <= 0.0) cfg_.stale_ms = 2.0 * cfg_.base_timeout_ms;
  cfg_.window = std::max(cfg_.window, 4);
  devs_.resize(static_cast<std::size_t>(std::max(devices, 1)));
  for (PerDev& d : devs_) d.window.assign(static_cast<std::size_t>(cfg_.window), 0.0);
}

int HealthMonitor::devices() const noexcept { return static_cast<int>(devs_.size()); }

double HealthMonitor::allowed_ms_locked(const PerDev& d) const {
  if (!cfg_.adaptive || d.waits < static_cast<std::uint64_t>(cfg_.min_samples))
    return cfg_.base_timeout_ms;
  // Window *maximum* (not a mid quantile) times a generous multiplier: the
  // allowance must dominate everything a healthy member has recently done,
  // or a burst of slow-but-legitimate waits would read as a loss.
  return std::clamp(cfg_.margin_mult * d.window_max_ms, cfg_.floor_ms, cfg_.base_timeout_ms);
}

double HealthMonitor::allowed_ms(int device) const {
  std::lock_guard lock(m_);
  return allowed_ms_locked(devs_[static_cast<std::size_t>(device)]);
}

std::chrono::nanoseconds HealthMonitor::allowed(int device) const {
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(allowed_ms(device) * 1.0e6));
}

double HealthMonitor::wait_begin() const noexcept { return detail::now_us() / 1e3; }

bool HealthMonitor::wait_end(int device, double t0_ms, bool ok) {
  const double now_ms = detail::now_us() / 1e3;
  const double waited = std::max(now_ms - t0_ms, 0.0);
  double allowed = 0.0;
  bool near_miss = false;
  bool lost_now = false;
  {
    std::lock_guard lock(m_);
    PerDev& d = devs_[static_cast<std::size_t>(device)];
    allowed = allowed_ms_locked(d);
    ++d.waits;
    d.last_wait_ms = waited;
    if (allowed > 0.0) d.worst_frac = std::max(d.worst_frac, waited / allowed);
    if (ok) {
      d.last_ok_ms = now_ms;
      d.window[d.window_next] = waited;
      if (++d.window_next == d.window.size()) d.window_next = 0;
      d.window_max_ms = *std::max_element(d.window.begin(), d.window.end());
      d.latency_ewma_ms = d.waits == 1
                              ? waited
                              : d.latency_ewma_ms + cfg_.ewma_alpha * (waited - d.latency_ewma_ms);
      if (waited >= cfg_.degraded_frac * allowed) {
        ++d.near_misses;
        near_miss = true;
        d.degraded_left = cfg_.degraded_hold;
        if (d.state == DeviceState::Healthy) d.state = DeviceState::Degraded;
      } else if (d.state == DeviceState::Degraded && d.degraded_left > 0 &&
                 --d.degraded_left == 0) {
        d.state = DeviceState::Healthy;
      }
    } else {
      ++d.timeouts;
      lost_now = d.state != DeviceState::Lost;
      d.state = DeviceState::Lost;
    }
  }
  wait_ms_hist().observe(waited);
  wait_margin_hist().observe(std::max(allowed - waited, 0.0));
  if (near_miss)
    journal_log(JournalSeverity::Warn, "health", "near_miss", device, waited);
  if (lost_now)
    journal_log(JournalSeverity::Error, "health", "wait_timeout", device, allowed);
  return ok;
}

void HealthMonitor::mark_lost(int device) {
  bool changed = false;
  {
    std::lock_guard lock(m_);
    PerDev& d = devs_[static_cast<std::size_t>(device)];
    changed = d.state != DeviceState::Lost;
    d.state = DeviceState::Lost;
  }
  if (changed) journal_log(JournalSeverity::Error, "health", "marked_lost", device);
}

void HealthMonitor::sample_occupancy(int device, bool busy) {
  std::lock_guard lock(m_);
  PerDev& d = devs_[static_cast<std::size_t>(device)];
  const double v = busy ? 1.0 : 0.0;
  if (!d.occupancy_seeded) {
    d.occupancy_ewma = v;
    d.occupancy_seeded = true;
  } else {
    d.occupancy_ewma += cfg_.ewma_alpha * (v - d.occupancy_ewma);
  }
}

DeviceState HealthMonitor::state(int device) const {
  std::lock_guard lock(m_);
  const PerDev& d = devs_[static_cast<std::size_t>(device)];
  if (d.state == DeviceState::Healthy && d.last_ok_ms >= 0.0 &&
      detail::now_us() / 1e3 - d.last_ok_ms > cfg_.stale_ms)
    return DeviceState::Degraded;  // heartbeat stale: suspicious, not lost
  return d.state;
}

DeviceHealthSnapshot HealthMonitor::snapshot_locked(int device, const PerDev& d,
                                                    double now_ms) const {
  DeviceHealthSnapshot s;
  s.device = device;
  s.state = d.state;
  if (s.state == DeviceState::Healthy && d.last_ok_ms >= 0.0 &&
      now_ms - d.last_ok_ms > cfg_.stale_ms)
    s.state = DeviceState::Degraded;
  s.waits = d.waits;
  s.timeouts = d.timeouts;
  s.near_misses = d.near_misses;
  s.latency_ewma_ms = d.latency_ewma_ms;
  s.occupancy_ewma = d.occupancy_ewma;
  s.window_max_ms = d.window_max_ms;
  s.last_wait_ms = d.last_wait_ms;
  s.worst_frac = d.worst_frac;
  s.allowed_ms = allowed_ms_locked(d);
  s.heartbeat_age_ms = d.last_ok_ms >= 0.0 ? now_ms - d.last_ok_ms : -1.0;
  return s;
}

DeviceHealthSnapshot HealthMonitor::snapshot(int device) const {
  const double now_ms = detail::now_us() / 1e3;
  std::lock_guard lock(m_);
  return snapshot_locked(device, devs_[static_cast<std::size_t>(device)], now_ms);
}

std::vector<DeviceHealthSnapshot> HealthMonitor::snapshot() const {
  const double now_ms = detail::now_us() / 1e3;
  std::lock_guard lock(m_);
  std::vector<DeviceHealthSnapshot> out;
  out.reserve(devs_.size());
  for (std::size_t i = 0; i < devs_.size(); ++i)
    out.push_back(snapshot_locked(static_cast<int>(i), devs_[i], now_ms));
  return out;
}

double HealthMonitor::env_base_timeout_ms(double fallback_ms) {
  if (const char* env = std::getenv("FTH_POOL_TIMEOUT_MS"); env != nullptr && env[0] != '\0') {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  return fallback_ms;
}

}  // namespace fth::obs

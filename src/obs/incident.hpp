// fth::obs incident — auto-assembled forensic capsules for FT incidents.
//
// When something noteworthy happens — a device loss is absorbed, recovery
// escalates to recovery_error, a campaign trial dies — the scattered
// evidence (journal records, flight-recorder rings, the trailing DAG
// fragment, metrics deltas, the FaultPlane strike ledger, the health
// timeline) is bundled into ONE JSON *incident capsule* and written
// atomically (tmp + rename) into the incident directory. `tools/fth_incident`
// renders a capsule as a causal timeline (strike → detection → recovery →
// verification) and computes per-incident detection latency and recovery
// cost; CI uploads capsules as artifacts on failure.
//
// Layering: this module is pure fth::obs — it knows nothing about
// ft::RecoveryOutcome or fault::FaultPlane. Emitters flatten their state
// into IncidentOutcome strings and pre-rendered JSON fragments
// (strikes/ledger), so src/ft and src/fault depend on obs, never the
// reverse.
//
// Cost discipline: incident_enabled() is one relaxed atomic load; nothing
// is collected or allocated until an emitter has an incident in hand (an
// exceptional, already-slow path). `FTH_INCIDENT=<dir>` arms at static-init
// time; arming incidents also arms the journal (capsules are assembled from
// it). fth_checkinfo reports the armed state for the Release bench guard.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/journal.hpp"

namespace fth::json {
class Value;
}  // namespace fth::json

namespace fth::obs {

/// Flattened recovery outcome (the ft::RecoveryOutcome chain without the
/// ft types): what the run concluded about the incident.
struct IncidentOutcome {
  std::string status;  ///< "recovered", "escalated", "degraded", "failed", …
  std::string reason;  ///< machine cause ("device_lost", "threshold", …)
  std::string detail;  ///< human context (abort message, gap vs threshold, …)
  int attempts = 0;    ///< recovery attempts consumed
};

/// Everything one capsule bundles. Emitters fill what they have; empty
/// vectors/strings are emitted as empty arrays (or omitted for fragments).
struct IncidentReport {
  const char* trigger = "";  ///< "device_loss" | "escalation" | "recovery_error"
  std::string who;           ///< emitting driver ("pool_gehrd", "gehrd", …)
  std::uint64_t run_id = 0;  ///< journal run the incident belongs to
  int device = -1;           ///< device ordinal (-1 none)
  std::int64_t boundary = -1;  ///< iteration boundary (-1 none)
  IncidentOutcome outcome;
  /// Counter snapshot-delta over the incident's run (name → delta).
  std::vector<std::pair<std::string, std::uint64_t>> metrics_delta;
  std::vector<JournalEvent> journal;        ///< run-sliced journal records
  std::vector<DeviceHealthSnapshot> health; ///< health timeline at assembly
  /// Pre-rendered JSON fragments (arrays/objects); empty = omitted.
  std::string strikes_json;  ///< FaultPlane fired faults + losses
  std::string ledger_json;   ///< campaign/soak trial ledger entry
  std::string flight_json;   ///< obs::flight_tail_json(...)
  std::string dag_json;      ///< obs::dag::tail_json(...)
};

namespace incident_detail {
extern std::atomic<bool> g_on;  ///< emitter gate (one relaxed load when off)
}  // namespace incident_detail

/// True between incident_set_dir() and incident_stop(). Relaxed load.
[[nodiscard]] inline bool incident_enabled() noexcept {
  return incident_detail::g_on.load(std::memory_order_relaxed);
}

/// Arm capsule emission into `dir` (created if missing). Also arms the
/// journal when it is off — capsules are assembled from it.
void incident_set_dir(const std::string& dir);

/// Disarm capsule emission (the journal stays as it was).
void incident_stop();

/// The armed incident directory ("" when disarmed).
[[nodiscard]] std::string incident_dir();

/// Render the capsule document (schema "fth-incident-v1").
[[nodiscard]] std::string render_incident_json(const IncidentReport& rep);

/// Write a capsule atomically (tmp + rename) as
/// `<dir>/fth_incident_run<run_id>_<seq>.json`. Returns the path, or ""
/// when emission is disarmed or the write failed.
std::string write_incident(const IncidentReport& rep);

/// Honour `FTH_INCIDENT=<dir>`. Idempotent; called from a static
/// initializer like the other obs env hooks, and explicitly by fth_checkinfo.
void incident_init_from_env();

/// Schema validation for a parsed capsule: "" when valid, else a
/// human-readable description of the first violation. Shared by
/// `fth_incident --check` and the tests.
[[nodiscard]] std::string incident_validate(const json::Value& capsule);

/// Per-incident timings derived from the capsule's journal slice (all in
/// the obs µs timebase; -1 when the corresponding record is absent).
struct IncidentTiming {
  double strike_us = -1.0;       ///< first FaultPlane strike record
  double detect_us = -1.0;       ///< first detection record
  double repair_done_us = -1.0;  ///< last repair/verification record
  double detection_latency_us = -1.0;  ///< detect − strike
  double recovery_cost_us = -1.0;      ///< repair_done − detect
};
[[nodiscard]] IncidentTiming incident_timing(const json::Value& capsule);

}  // namespace fth::obs

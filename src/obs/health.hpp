// fth::obs health — per-device health monitoring for pool runs.
//
// The pool driver's loss detection (DESIGN.md §13) used a single fixed
// timeout for every host wait on a device. That conflates two different
// quantities: how long waits *actually* take on this machine (milliseconds)
// and how long the driver is willing to wait before declaring a member dead
// (the configured ceiling). The HealthMonitor measures the former per
// member — a rolling window plus EWMA of observed wait latencies, an
// occupancy EWMA sampled at iteration boundaries, and a heartbeat (time
// since the member last answered) — and derives an adaptive timeout from
// the window maximum with a generous multiplier, clamped between a floor
// and the configured ceiling. A stall is then detected in ~window·mult
// instead of the worst-case ceiling, while a slow-but-alive member is never
// declared lost: the adaptive value can only shrink the ceiling, never the
// evidence requirement, and near-misses (a wait above degraded_frac of the
// allowance) degrade the member's state and land in the journal *before*
// they become false losses.
//
// Every completed wait is recorded in two histograms:
//   fault.device_loss.wait_ms      observed wait durations (ms) — the
//                                  committed baseline distribution the
//                                  adaptive timeout is derived from;
//   fault.device_loss.wait_margin  remaining margin (allowed − waited, ms)
//                                  — how close each wait came to a timeout.
//
// The monitor is pure bookkeeping over device ordinals: it holds no
// hybrid:: state and never blocks, so it can be shared with tests and
// embedded in incident capsules (obs/incident.hpp) as the health timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fth::obs {

enum class DeviceState : std::uint8_t { Healthy = 0, Degraded = 1, Lost = 2 };

[[nodiscard]] const char* to_string(DeviceState s) noexcept;

struct HealthConfig {
  /// Hard ceiling for any wait (the driver's former fixed timeout).
  /// env_base_timeout_ms() lets `FTH_POOL_TIMEOUT_MS` override it.
  double base_timeout_ms = 2000.0;
  /// Derive the allowance from observed latency (window max · margin_mult,
  /// clamped to [floor_ms, base_timeout_ms]). false pins it to the ceiling.
  bool adaptive = true;
  double floor_ms = 100.0;   ///< never adapt below (absorbs scheduler hiccups)
  double margin_mult = 32.0; ///< allowance = margin_mult × window max latency
  int min_samples = 32;      ///< waits observed before adapting (ceiling until then)
  /// A wait ≥ degraded_frac × allowance is a near-miss: the member is
  /// marked Degraded (recovering to Healthy after degraded_hold clean waits).
  double degraded_frac = 0.5;
  int degraded_hold = 16;
  /// Heartbeat staleness that reads as Degraded (0 = 2 × base_timeout_ms).
  double stale_ms = 0.0;
  double ewma_alpha = 0.125;  ///< latency/occupancy EWMA smoothing
  int window = 64;            ///< rolling wait-latency window per member
};

/// Point-in-time per-member summary (capsule health timeline entry).
struct DeviceHealthSnapshot {
  int device = -1;
  DeviceState state = DeviceState::Healthy;
  std::uint64_t waits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t near_misses = 0;
  double latency_ewma_ms = 0.0;
  double occupancy_ewma = 0.0;
  double window_max_ms = 0.0;
  double last_wait_ms = 0.0;
  double worst_frac = 0.0;       ///< max waited/allowed observed
  double allowed_ms = 0.0;       ///< current adaptive allowance
  double heartbeat_age_ms = 0.0; ///< since the member last answered a wait
};

class HealthMonitor {
 public:
  explicit HealthMonitor(int devices, HealthConfig cfg = {});

  [[nodiscard]] int devices() const noexcept;
  [[nodiscard]] const HealthConfig& config() const noexcept { return cfg_; }

  /// Current allowance for a wait on `device` (ns form for Event::wait_for).
  [[nodiscard]] double allowed_ms(int device) const;
  [[nodiscard]] std::chrono::nanoseconds allowed(int device) const;

  /// Timestamp (ms on the obs clock) taken immediately before the wait.
  [[nodiscard]] double wait_begin() const noexcept;

  /// Record a completed wait: latency window/EWMA, heartbeat, the wait_ms /
  /// wait_margin histograms, near-miss accounting (with a journal record),
  /// and — on timeout — the Lost transition. Returns `ok` unchanged so call
  /// sites keep their `if (!…) throw device_lost` shape.
  bool wait_end(int device, double t0_ms, bool ok);

  /// Quarantine notification from the driver (poison/nonfinite detections
  /// arrive here without a timed-out wait).
  void mark_lost(int device);

  /// Occupancy sample (busy = the member had queued/executing work when the
  /// driver looked, typically at an iteration boundary).
  void sample_occupancy(int device, bool busy);

  [[nodiscard]] DeviceState state(int device) const;
  [[nodiscard]] DeviceHealthSnapshot snapshot(int device) const;
  [[nodiscard]] std::vector<DeviceHealthSnapshot> snapshot() const;

  /// `FTH_POOL_TIMEOUT_MS` if set and positive, else `fallback_ms`.
  [[nodiscard]] static double env_base_timeout_ms(double fallback_ms);

 private:
  struct PerDev {
    DeviceState state = DeviceState::Healthy;
    std::uint64_t waits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t near_misses = 0;
    int degraded_left = 0;  ///< clean waits until Degraded clears
    double latency_ewma_ms = 0.0;
    double occupancy_ewma = 0.0;
    bool occupancy_seeded = false;
    double last_wait_ms = 0.0;
    double worst_frac = 0.0;
    double last_ok_ms = -1.0;  ///< obs-clock ms of the last answered wait
    std::vector<double> window;  ///< rolling wait latencies (ms)
    std::size_t window_next = 0;
    double window_max_ms = 0.0;
  };

  [[nodiscard]] double allowed_ms_locked(const PerDev& d) const;
  [[nodiscard]] DeviceHealthSnapshot snapshot_locked(int device, const PerDev& d,
                                                     double now_ms) const;

  HealthConfig cfg_;
  mutable std::mutex m_;
  std::vector<PerDev> devs_;
};

}  // namespace fth::obs

#include "obs/incident.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string_view>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace fth::obs {

namespace incident_detail {
std::atomic<bool> g_on{false};
}  // namespace incident_detail

namespace {

std::mutex g_dir_m;
std::string g_dir;                       // guarded by g_dir_m
std::atomic<std::uint64_t> g_seq{0};     // capsule sequence (process-wide)

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_str_field(std::string& out, const char* key, std::string_view v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  append_escaped(out, v);
  out += "\"";
}

std::string health_entry_json(const DeviceHealthSnapshot& s) {
  std::string out;
  out.reserve(220);
  out += "{\"device\":" + std::to_string(s.device);
  out += ",\"state\":\"";
  out += to_string(s.state);
  out += "\",\"waits\":" + std::to_string(s.waits);
  out += ",\"timeouts\":" + std::to_string(s.timeouts);
  out += ",\"near_misses\":" + std::to_string(s.near_misses);
  out += ",\"latency_ewma_ms\":";
  append_num(out, s.latency_ewma_ms);
  out += ",\"occupancy_ewma\":";
  append_num(out, s.occupancy_ewma);
  out += ",\"window_max_ms\":";
  append_num(out, s.window_max_ms);
  out += ",\"last_wait_ms\":";
  append_num(out, s.last_wait_ms);
  out += ",\"worst_frac\":";
  append_num(out, s.worst_frac);
  out += ",\"allowed_ms\":";
  append_num(out, s.allowed_ms);
  out += ",\"heartbeat_age_ms\":";
  append_num(out, s.heartbeat_age_ms);
  out += "}";
  return out;
}

// Journal (component, event) classification the timing derivation uses.
// These are the canonical names the emitters record — keep in sync with
// DESIGN.md §14's event taxonomy.
[[nodiscard]] bool is_strike(std::string_view component, std::string_view event) {
  return component == "fault" && (event == "strike" || event == "device_loss");
}
[[nodiscard]] bool is_detection(std::string_view component, std::string_view event) {
  return (component == "pool" && event == "loss_detected") ||
         (component == "ft" && event == "detect") ||
         (component == "health" && event == "wait_timeout");
}
[[nodiscard]] bool is_repair(std::string_view component, std::string_view event) {
  if (component == "pool")
    return event == "reconstructed" || event == "remapped" || event == "parity_degraded" ||
           event == "repair_done" || event == "panel_retry";
  if (component == "ft")
    return event == "rollback" || event == "reexec" || event == "ckpt_rederived";
  return false;
}

// Honour FTH_INCIDENT for any binary linking the library.
[[maybe_unused]] const bool g_env_init = [] {
  incident_init_from_env();
  return true;
}();

}  // namespace

void incident_set_dir(const std::string& dir) {
  {
    std::lock_guard lock(g_dir_m);
    g_dir = dir;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; write reports failures
  if (!journal_enabled()) journal_start();
  incident_detail::g_on.store(true, std::memory_order_relaxed);
}

void incident_stop() {
  incident_detail::g_on.store(false, std::memory_order_relaxed);
  std::lock_guard lock(g_dir_m);
  g_dir.clear();
}

std::string incident_dir() {
  std::lock_guard lock(g_dir_m);
  return g_dir;
}

std::string render_incident_json(const IncidentReport& rep) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"fth-incident-v1\"";
  append_str_field(out, "trigger", rep.trigger);
  append_str_field(out, "who", rep.who);
  out += ",\"run\":" + std::to_string(rep.run_id);
  out += ",\"device\":" + std::to_string(rep.device);
  out += ",\"boundary\":" + std::to_string(rep.boundary);
  out += ",\"t_us\":";
  append_num(out, detail::now_us());
  out += ",\"outcome\":{\"status\":\"";
  append_escaped(out, rep.outcome.status);
  out += "\"";
  append_str_field(out, "reason", rep.outcome.reason);
  append_str_field(out, "detail", rep.outcome.detail);
  out += ",\"attempts\":" + std::to_string(rep.outcome.attempts);
  out += "}";
  out += ",\"metrics_delta\":{";
  for (std::size_t i = 0; i < rep.metrics_delta.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"";
    append_escaped(out, rep.metrics_delta[i].first);
    out += "\":" + std::to_string(rep.metrics_delta[i].second);
  }
  out += "}";
  out += ",\"journal\":[";
  for (std::size_t i = 0; i < rep.journal.size(); ++i) {
    if (i > 0) out += ',';
    out += journal_event_json(rep.journal[i]);
  }
  out += "]";
  out += ",\"health\":[";
  for (std::size_t i = 0; i < rep.health.size(); ++i) {
    if (i > 0) out += ',';
    out += health_entry_json(rep.health[i]);
  }
  out += "]";
  if (!rep.strikes_json.empty()) out += ",\"strikes\":" + rep.strikes_json;
  if (!rep.ledger_json.empty()) out += ",\"ledger\":" + rep.ledger_json;
  if (!rep.flight_json.empty()) out += ",\"flight\":" + rep.flight_json;
  if (!rep.dag_json.empty()) out += ",\"dag\":" + rep.dag_json;
  out += "}";
  return out;
}

std::string write_incident(const IncidentReport& rep) {
  if (!incident_enabled()) return "";
  const std::string dir = incident_dir();
  if (dir.empty()) return "";
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string path = dir + "/fth_incident_run" + std::to_string(rep.run_id) + "_" +
                           std::to_string(seq) + ".json";
  const std::string tmp =
      path + ".tmp" + std::to_string(static_cast<long>(::getpid()));
  const std::string body = render_incident_json(rep);
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fth::obs: cannot open incident capsule '%s'\n", tmp.c_str());
    return "";
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                     std::fputc('\n', f) != EOF;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::fprintf(stderr, "fth::obs: failed writing incident capsule '%s'\n", path.c_str());
    return "";
  }
  return path;
}

void incident_init_from_env() {
  static bool armed = false;
  const char* dir = std::getenv("FTH_INCIDENT");
  if (armed || dir == nullptr || dir[0] == '\0') return;
  armed = true;
  incident_set_dir(dir);
}

std::string incident_validate(const json::Value& capsule) {
  if (!capsule.is_object()) return "capsule is not a JSON object";
  const json::Value* schema = capsule.find("schema");
  if (schema == nullptr || !schema->is_string()) return "missing string 'schema'";
  if (schema->as_string() != "fth-incident-v1")
    return "unknown schema '" + schema->as_string() + "'";
  const auto need_string = [&](const char* key) -> std::string {
    const json::Value* v = capsule.find(key);
    if (v == nullptr || !v->is_string()) return std::string("missing string '") + key + "'";
    return "";
  };
  const auto need_number = [&](const char* key) -> std::string {
    const json::Value* v = capsule.find(key);
    if (v == nullptr || !v->is_number()) return std::string("missing number '") + key + "'";
    return "";
  };
  for (const char* key : {"trigger", "who"})
    if (std::string err = need_string(key); !err.empty()) return err;
  if (capsule.at("trigger").as_string().empty()) return "'trigger' is empty";
  for (const char* key : {"run", "device", "boundary", "t_us"})
    if (std::string err = need_number(key); !err.empty()) return err;
  const json::Value* outcome = capsule.find("outcome");
  if (outcome == nullptr || !outcome->is_object()) return "missing object 'outcome'";
  const json::Value* status = outcome->find("status");
  if (status == nullptr || !status->is_string() || status->as_string().empty())
    return "'outcome.status' missing or empty";
  const json::Value* metrics = capsule.find("metrics_delta");
  if (metrics == nullptr || !metrics->is_object()) return "missing object 'metrics_delta'";
  for (const auto& [name, value] : metrics->as_object())
    if (!value.is_number()) return "non-numeric metrics_delta entry '" + name + "'";
  const json::Value* journal = capsule.find("journal");
  if (journal == nullptr || !journal->is_array()) return "missing array 'journal'";
  for (std::size_t i = 0; i < journal->as_array().size(); ++i) {
    const json::Value& e = journal->as_array()[i];
    const std::string where = "journal[" + std::to_string(i) + "]";
    if (!e.is_object()) return where + " is not an object";
    for (const char* key : {"severity", "component", "event"}) {
      const json::Value* v = e.find(key);
      if (v == nullptr || !v->is_string())
        return where + " missing string '" + key + "'";
    }
    for (const char* key : {"t_us", "run", "device"}) {
      const json::Value* v = e.find(key);
      if (v == nullptr || !v->is_number())
        return where + " missing number '" + key + "'";
    }
  }
  const json::Value* health = capsule.find("health");
  if (health == nullptr || !health->is_array()) return "missing array 'health'";
  for (std::size_t i = 0; i < health->as_array().size(); ++i) {
    const json::Value& e = health->as_array()[i];
    const std::string where = "health[" + std::to_string(i) + "]";
    if (!e.is_object()) return where + " is not an object";
    const json::Value* state = e.find("state");
    if (state == nullptr || !state->is_string()) return where + " missing string 'state'";
    const json::Value* device = e.find("device");
    if (device == nullptr || !device->is_number()) return where + " missing number 'device'";
  }
  for (const char* key : {"strikes", "ledger", "flight", "dag"}) {
    const json::Value* v = capsule.find(key);
    if (v != nullptr && !v->is_array() && !v->is_object())
      return std::string("'") + key + "' is neither array nor object";
  }
  return "";
}

IncidentTiming incident_timing(const json::Value& capsule) {
  IncidentTiming t;
  const json::Value* journal = capsule.find("journal");
  if (journal == nullptr || !journal->is_array()) return t;
  for (const json::Value& e : journal->as_array()) {
    if (!e.is_object()) continue;
    const json::Value* component = e.find("component");
    const json::Value* event = e.find("event");
    const json::Value* ts = e.find("t_us");
    if (component == nullptr || !component->is_string() || event == nullptr ||
        !event->is_string() || ts == nullptr || !ts->is_number())
      continue;
    const std::string& c = component->as_string();
    const std::string& ev = event->as_string();
    const double us = ts->as_number();
    if (is_strike(c, ev) && (t.strike_us < 0.0 || us < t.strike_us)) t.strike_us = us;
    if (is_detection(c, ev) && (t.detect_us < 0.0 || us < t.detect_us)) t.detect_us = us;
    if (is_repair(c, ev) && us > t.repair_done_us) t.repair_done_us = us;
  }
  if (t.strike_us >= 0.0 && t.detect_us >= 0.0)
    t.detection_latency_us = t.detect_us - t.strike_us;
  if (t.detect_us >= 0.0 && t.repair_done_us >= 0.0)
    t.recovery_cost_us = t.repair_done_us - t.detect_us;
  return t;
}

}  // namespace fth::obs

// fth::obs journal — bounded, Release-safe structured event log.
//
// Counters say *how often* the FT machinery fired; the journal says *what
// happened, in order*: every detection, rollback, re-execution, FaultPlane
// strike, pool loss/reconstruction/remap, checker violation, and health
// state change is one structured record (timestamp, severity, run id,
// device ordinal, component, event, numeric payload, optional detail).
// The ring is bounded (oldest records overwritten), so it is safe to leave
// armed across whole soak campaigns, and it is the raw material incident
// capsules (obs/incident.hpp) are assembled from.
//
// Cost discipline mirrors the trace recorder: journal_log() starts with one
// relaxed atomic load and returns immediately when the journal is off — no
// locks, no allocation, no formatting. Call sites that would *build* a
// detail string must guard with journal_enabled() so the off path stays
// allocation-free; fth_checkinfo reports the armed state so run_benches.sh
// can assert Release bench numbers were taken with the journal off.
//
// `FTH_JOURNAL=<path>` arms the journal at static-init time and dumps the
// ring as JSONL at process exit; campaigns and tests arm it with
// journal_start() and read it back with journal_snapshot().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fth::obs {

enum class JournalSeverity : std::uint8_t { Info = 0, Warn = 1, Error = 2 };

[[nodiscard]] const char* to_string(JournalSeverity s) noexcept;

/// One structured record. `component` and `event` must be string literals
/// or intern_name() pointers (stored, never copied — same contract as the
/// trace recorder's names).
struct JournalEvent {
  double t_us = 0.0;         ///< obs::detail::now_us() timebase (steady clock)
  std::uint64_t run_id = 0;  ///< journal run id in force when recorded
  double value = 0.0;        ///< numeric payload (gap, waited ms, countdown, …)
  std::int64_t boundary = -1;  ///< iteration boundary (-1 none)
  const char* component = "";  ///< subsystem: "ft", "pool", "fault", "health", "check"
  const char* event = "";      ///< what happened: "detect", "loss_detected", …
  int device = -1;             ///< pool/device ordinal (-1 none)
  JournalSeverity severity = JournalSeverity::Info;
  std::string detail;  ///< optional human context (empty on hot paths)
};

namespace journal_detail {
extern std::atomic<bool> g_on;  ///< hot-path gate (one relaxed load when off)
}  // namespace journal_detail

/// True between journal_start() and journal_stop(). Relaxed load, any thread.
[[nodiscard]] inline bool journal_enabled() noexcept {
  return journal_detail::g_on.load(std::memory_order_relaxed);
}

/// Arm the journal with a ring of `capacity` records (clamped to ≥ 64).
/// Re-arming clears the ring. Incident capsules need the journal: arming
/// incidents (obs/incident.hpp) arms the journal too.
void journal_start(std::size_t capacity = 4096);

/// Disarm and release the ring.
void journal_stop();

/// Record one event. Self-gating: returns immediately when the journal is
/// off. The no-detail overloads are allocation-free even when on (beyond
/// the ring slot's detail.clear()).
void journal_log(JournalSeverity sev, const char* component, const char* event,
                 int device = -1, double value = 0.0,
                 std::int64_t boundary = -1) noexcept;
/// Detail-carrying overload. Building the detail string allocates, so call
/// sites must guard with `if (journal_enabled())`.
void journal_log(JournalSeverity sev, const char* component, const char* event, int device,
                 double value, std::int64_t boundary, std::string detail) noexcept;

/// Run-id management: campaigns stamp each trial (and the pool driver each
/// run) with a fresh id so a capsule can slice the shared ring down to its
/// own run. Ids are process-monotonic, starting at 1; 0 means "no run".
std::uint64_t journal_new_run() noexcept;
void journal_set_run(std::uint64_t id) noexcept;
[[nodiscard]] std::uint64_t journal_run() noexcept;

/// Ring contents, oldest first. The filtered overload keeps only records
/// stamped with `run_id`. Empty when the journal is off.
[[nodiscard]] std::vector<JournalEvent> journal_snapshot();
[[nodiscard]] std::vector<JournalEvent> journal_snapshot(std::uint64_t run_id);

/// One JSONL line per record (no trailing newline on the last; "" for none).
[[nodiscard]] std::string journal_to_jsonl(const std::vector<JournalEvent>& events);
/// Single JSON object for one record (the JSONL line / capsule array entry).
[[nodiscard]] std::string journal_event_json(const JournalEvent& e);

/// Dump the ring as JSONL to `path`; false on I/O failure or journal off.
bool journal_write(const std::string& path);

/// Honour `FTH_JOURNAL=<path>`: arm the journal and register an atexit dump
/// to that path. Idempotent; called from a static initializer like the
/// trace recorder's env hook, and explicitly by fth_checkinfo.
void journal_init_from_env();

}  // namespace fth::obs

// fth::obs tracing — Chrome/Perfetto `trace_event` JSON recorder.
//
// Scoped spans (B/E pairs), instant events, and counter tracks, recorded
// into per-thread buffers and written as a single JSON file the Perfetto UI
// (https://ui.perfetto.dev) or chrome://tracing opens directly. Designed so
// the disabled path costs one relaxed atomic load per call site: spans and
// events check `trace_enabled()` and bail before touching any state.
//
// Enabling:
//  * environment: `FTH_TRACE=<path>` traces the whole process and writes
//    the file at trace_stop() or process exit;
//  * programmatic: trace_start(path) ... trace_stop().
//
// Event names and categories must be string literals (or otherwise outlive
// the recorder) — the recorder stores the pointers, never copies, which is
// what keeps the enabled path allocation-free. DESIGN.md §8 documents the
// event taxonomy and track layout used across the library.
#pragma once

#include <cstdint>
#include <string>

namespace fth::obs {

/// True between trace_start() and trace_stop(). Relaxed load — safe to
/// call from any thread at any frequency.
[[nodiscard]] bool trace_enabled() noexcept;

/// Start recording; events accumulate in memory until trace_stop(), which
/// writes `path`. Calling trace_start() while active just replaces the
/// output path. Registers an atexit hook so a crash-free process always
/// flushes.
void trace_start(const std::string& path);

/// Stop recording and write the accumulated trace (no-op when inactive).
/// Returns the number of events written.
std::size_t trace_stop();

/// Honour `FTH_TRACE=<path>` if set. Called once automatically from a
/// static initializer in trace.cpp; benches also call it explicitly so the
/// behaviour does not depend on static-init order.
void trace_init_from_env();

/// Name the calling thread's track in the trace (e.g. "device-stream").
/// Cheap and callable before tracing starts; the name is emitted as a
/// `thread_name` metadata event at write time.
void set_thread_name(const char* name);

namespace detail {
void begin_span(const char* cat, const char* name) noexcept;
void begin_span(const char* cat, const char* name, const char* arg_key,
                double arg_value) noexcept;
void end_span() noexcept;
}  // namespace detail

/// RAII scoped span: emits a `ph:"B"` event at construction and the
/// matching `ph:"E"` at destruction, on the calling thread's track.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) noexcept : armed_(trace_enabled()) {
    if (armed_) detail::begin_span(cat, name);
  }
  /// Span with one numeric argument shown in the UI (e.g. bytes moved).
  TraceSpan(const char* cat, const char* name, const char* arg_key,
            double arg_value) noexcept
      : armed_(trace_enabled()) {
    if (armed_) detail::begin_span(cat, name, arg_key, arg_value);
  }
  ~TraceSpan() {
    if (armed_) detail::end_span();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_;
};

/// Thread-scoped instant event (`ph:"i"`, scope "t").
void instant(const char* cat, const char* name) noexcept;

/// Sample on a counter track (`ph:"C"`): one named series per `name`.
void counter(const char* name, double value) noexcept;

}  // namespace fth::obs

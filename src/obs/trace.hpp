// fth::obs tracing — Chrome/Perfetto `trace_event` JSON recorder, with a
// bounded flight-recorder mode and a live feed into the profiler.
//
// Scoped spans (B/E pairs), instant events, and counter tracks, recorded
// into per-thread buffers and written as a single JSON file the Perfetto UI
// (https://ui.perfetto.dev) or chrome://tracing opens directly. Designed so
// the disabled path costs one relaxed atomic load per call site: spans and
// events check `trace_enabled()` and bail before touching any state.
//
// Three sinks share the same instrumentation points; any combination can be
// active, and `trace_enabled()` is true while at least one is:
//  * trace file — unbounded buffers, written at trace_stop() / process exit
//    (`FTH_TRACE=<path>` or trace_start());
//  * flight recorder — a bounded per-thread ring that keeps only the last
//    `capacity` events, cheap enough to leave on for whole fault campaigns
//    (`FTH_FLIGHT=<n_events>` or flight_start()). It is auto-dumped to a
//    trace file when recovery escalates to abort (recovery_error) or on a
//    fatal signal, so post-mortems carry the last milliseconds of timeline;
//  * profiler — per-phase aggregation, see obs/profile.hpp.
//
// Event names and categories must be string literals or pointers obtained
// from intern_name() — the recorder stores the pointers, never copies,
// which is what keeps the enabled path allocation-free. DESIGN.md §8
// documents the event taxonomy and track layout used across the library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fth::obs {

/// True while any sink (trace file, flight recorder, profiler) is active.
/// Relaxed load — safe to call from any thread at any frequency.
[[nodiscard]] bool trace_enabled() noexcept;

/// Start recording; events accumulate in memory until trace_stop(), which
/// writes `path`. Calling trace_start() while active just replaces the
/// output path. Registers an atexit hook so a crash-free process always
/// flushes.
void trace_start(const std::string& path);

/// Stop file tracing and write the accumulated trace (no-op when no file
/// trace is active). Returns the number of events written.
std::size_t trace_stop();

/// Honour `FTH_TRACE=<path>` and `FTH_FLIGHT=<n_events>` if set. Called
/// once automatically from a static initializer in trace.cpp; benches also
/// call it explicitly so the behaviour does not depend on static-init order.
void trace_init_from_env();

/// Name the calling thread's track in the trace (e.g. "device-stream").
/// Cheap and callable before tracing starts; the name is emitted as a
/// `thread_name` metadata event at write time.
void set_thread_name(const char* name);

/// Copy `name` into process-lifetime storage and return a stable pointer,
/// deduplicated by content. This is the supported way to use a dynamically
/// built string (e.g. a per-size bench label) as an event name or category
/// — passing a temporary's .c_str() directly would dangle, since the
/// recorder keeps pointers until write time. Interned names survive until
/// process exit; intern each distinct label once and reuse the pointer.
[[nodiscard]] const char* intern_name(std::string_view name);

/// Interned `"<kind>@<basename(file)>:<line>"` call-site label — the per-site
/// span names Stream::synchronize / Event::wait record so the profiler and
/// the DAG recorder can attribute waits to source locations. Cached per
/// (kind, file, line), so repeat calls from the same site are a map hit.
[[nodiscard]] const char* site_label(const char* kind, const char* file, unsigned line);

// --- Flight recorder --------------------------------------------------------

/// Start the flight recorder: each thread keeps (up to) the last `capacity`
/// events in a preallocated ring. Enabled for the whole process by
/// `FTH_FLIGHT=<n_events>`. Also installs best-effort fatal-signal handlers
/// (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) that dump the ring before
/// re-raising.
void flight_start(std::size_t capacity);

/// True between flight_start() and flight_stop().
[[nodiscard]] bool flight_active() noexcept;

/// Write the current ring contents as a Chrome trace file and return its
/// path ("" when the recorder is inactive or the file cannot be written).
/// The dump carries an instant event named after `reason` on a synthetic
/// track, and does not clear the rings — later dumps overwrite the file
/// with fresher history. Path: `FTH_FLIGHT_PATH` if set, else
/// `fth_flight_<pid>.json` in the working directory. Called automatically
/// from the recovery_error constructor and the fatal-signal handlers;
/// noexcept so it is safe mid-unwind.
std::string flight_dump(const char* reason) noexcept;

/// Stop the flight recorder (without dumping) and release the rings.
void flight_stop();

/// The newest `max_events` flight-ring events (merged across threads,
/// oldest first) rendered as a JSON array of
/// `{"ts_us":…,"ph":"B","tid":…,"cat":"…","name":"…"}` objects — the
/// embeddable form incident capsules (obs/incident.hpp) carry, as opposed
/// to flight_dump()'s Chrome-trace file. Non-destructive; "[]" when the
/// flight recorder is inactive.
[[nodiscard]] std::string flight_tail_json(std::size_t max_events);

namespace detail {
/// Microseconds on the recorder's clock (steady, zero at process start) —
/// the timebase of every recorded event. The profiler uses it so window
/// boundaries and span timestamps are directly comparable.
[[nodiscard]] double now_us() noexcept;
void begin_span(const char* cat, const char* name) noexcept;
void begin_span(const char* cat, const char* name, const char* arg_key,
                double arg_value) noexcept;
void end_span() noexcept;
/// The calling thread's trace track id (registers the thread's buffer on
/// first use). The DAG recorder tags its buffers with this so its nodes —
/// and the flow events it emits — land on the same Perfetto tracks as the
/// spans.
[[nodiscard]] std::uint32_t current_tid() noexcept;
/// True while a trace file is being recorded (the flight recorder and the
/// profiler do not count). Used by dag::stop() to decide whether emitting
/// flow events has anywhere to go.
[[nodiscard]] bool trace_file_active() noexcept;
/// Append a pre-stamped event (no re-timestamping) to the trace file
/// buffers; no-op unless a trace file is active. `ph` 's'/'f' are
/// Chrome-trace flow events: `value` carries the flow id.
void raw_event(char ph, const char* cat, const char* name, double ts_us, std::uint32_t tid,
               double value) noexcept;
}  // namespace detail

/// RAII scoped span: emits a `ph:"B"` event at construction and the
/// matching `ph:"E"` at destruction, on the calling thread's track.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) noexcept : armed_(trace_enabled()) {
    if (armed_) detail::begin_span(cat, name);
  }
  /// Span with one numeric argument shown in the UI (e.g. bytes moved).
  TraceSpan(const char* cat, const char* name, const char* arg_key,
            double arg_value) noexcept
      : armed_(trace_enabled()) {
    if (armed_) detail::begin_span(cat, name, arg_key, arg_value);
  }
  ~TraceSpan() {
    if (armed_) detail::end_span();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_;
};

/// Thread-scoped instant event (`ph:"i"`, scope "t").
void instant(const char* cat, const char* name) noexcept;

/// Sample on a counter track (`ph:"C"`): one named series per `name`.
void counter(const char* name, double value) noexcept;

}  // namespace fth::obs

// Bench-report regression comparison (the core of tools/bench_compare).
//
// Two bench_*.json reports produced by the same bench configuration are
// flattened to dotted numeric paths ("rows.0.ft_gflops",
// "metrics.counters.ft.detections", "profile.overlap.overlap_fraction") and
// diffed under a list of threshold rules. The first rule whose glob pattern
// matches a path decides how that metric is judged; unmatched paths are
// ignored, so a threshold file states exactly what is gated.
// EXPERIMENTS.md documents the threshold file format; the committed
// BENCH_baseline.json plus tools/thresholds_*.txt form the CI perf gate.
#pragma once

#include <cstdio>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace fth::obs {

struct ThresholdRule {
  enum class Mode {
    Rel,          ///< |cand − base| ≤ tol · max(|base|, |cand|)
    Abs,          ///< |cand − base| ≤ tol
    MaxIncrease,  ///< cand may exceed base by at most tol · |base| (times, bytes)
    MaxDecrease,  ///< cand may fall short of base by at most tol · |base| (GF/s)
    Ignore,       ///< matched paths are not gated
  };
  std::string pattern;  ///< glob over the dotted path: '*' any run, '?' one char
  Mode mode = Mode::Ignore;
  double tol = 0.0;
};

/// One judged metric.
struct Comparison {
  std::string path;
  double base = 0.0;
  double cand = 0.0;
  double rel_delta = 0.0;  ///< (cand − base) / max(|base|, |cand|, eps)
  bool violated = false;
  bool missing = false;  ///< present in base, absent in candidate (a violation)
  std::string rule;      ///< the pattern that matched
};

struct CompareResult {
  std::vector<Comparison> gated;  ///< every non-ignored metric, judged
  int violations = 0;
  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

/// '*' matches any (possibly empty) run of characters, '?' exactly one.
[[nodiscard]] bool glob_match(const std::string& pattern, const std::string& text);

/// Depth-first flatten of every numeric leaf (bools and strings skipped);
/// object keys joined with '.', array elements by index.
void flatten_numbers(const json::Value& v, const std::string& prefix,
                     std::map<std::string, double>& out);

/// Parse a threshold file: one `pattern mode tolerance` triple per line
/// (mode ∈ rel|abs|max_increase|max_decrease|ignore; ignore takes no
/// tolerance). '#' starts a comment. Throws json::parse_error on bad lines
/// (reusing the tooling error type).
[[nodiscard]] std::vector<ThresholdRule> parse_thresholds(std::istream& in);

/// Judge `cand` against `base` under `rules` (first match wins; unmatched
/// paths are ignored).
[[nodiscard]] CompareResult compare_reports(const json::Value& base, const json::Value& cand,
                                            const std::vector<ThresholdRule>& rules);

/// Human-readable verdict table (every gated metric, violations flagged).
void print_comparison(const CompareResult& res, std::FILE* out);

}  // namespace fth::obs

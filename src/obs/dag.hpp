// fth::obs::dag — execution-DAG recorder with critical-path attribution and
// what-if overlap analysis (DESIGN.md §12).
//
// While recording (FTH_DAG=1 or a bench's --dag flag), every stream task,
// h2d/d2h transfer, Event record, host wait (synchronize / event_wait,
// tagged with its interned call site), and host span is captured as a
// timestamped event in per-thread buffers — the same uncontended-mutex
// discipline as the trace recorder, and the same zero-cost-when-off shape:
// each hook is one relaxed atomic load when the recorder is idle.
//
// stop() assembles the events into a Graph whose happens-before edges come
// from the very machinery fth::check already trusts:
//   Seq   host program order (Work/Wait/Mark chain per host thread),
//   Fifo  ticket order within one stream (the in-order worker),
//   Enq   host chain node → the task it enqueued,
//   Cause finished task → the host wait that blocked on it (which
//         synchronize/event_wait, waiting on which ticket, from where).
// Every edge satisfies pred.t1 ≤ succ.t0 on the recorded clock, so the CPM
// forward pass provably yields critical_path_s ≤ wall_s.
//
// analyze() extracts the critical path (with and without Fifo edges — the
// data-only variant lower-bounds any reordering), per-node slack, and the
// "top blocking edges" table attributing host_wait_s to file:line sites.
// simulate() replays the DAG under a hypothetical config (k-panel
// lookahead, s streams, scaled device compute) and predicts wall time and
// overlap_fraction — the measured target the lookahead/fusion PRs are
// gated against. tools/fth_why is the CLI over a dumped *_dag.json.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace fth::json {
class Value;
}

namespace fth::obs::dag {

// --- Recording --------------------------------------------------------------

/// True while the recorder is armed. Relaxed load, any thread.
[[nodiscard]] bool enabled() noexcept;

/// Arm the recorder (clears any previously buffered events).
void start();

struct Graph;

/// Disarm and assemble the buffered events into a Graph. Returns an empty
/// graph when the recorder was not armed.
[[nodiscard]] Graph stop();

/// Honour `FTH_DAG` (=1 records and dumps `fth_dag_<pid>.json` at exit; any
/// other non-empty value is used as the dump path). Idempotent; called from
/// a static initializer like the trace recorder's env hook.
void init_from_env();

/// Zero-duration annotation node on the calling host thread's chain (the FT
/// driver marks rollback / re-execution episode boundaries with these).
void mark(const char* label) noexcept;

/// Trailing fragment of the in-flight recording: non-destructively snapshot
/// the buffered events (the recorder stays armed), assemble them, and render
/// the newest `max_nodes` nodes by end time as a JSON array of objects —
/// the embeddable form incident capsules (obs/incident.hpp) carry, as
/// opposed to stop()'s full Graph. "[]" when the recorder is off.
[[nodiscard]] std::string tail_json(std::size_t max_nodes);

// --- Graph ------------------------------------------------------------------

enum class NodeKind : std::uint8_t {
  Task = 0,  ///< stream task (incl. h2d/d2h transfers and event_record markers)
  Wait = 1,  ///< blocking host interval (synchronize / event_wait); CP point at t1
  Work = 2,  ///< host segment between two chain boundaries
  Span = 3,  ///< host TraceSpan (context only — no CP edges)
  Mark = 4,  ///< zero-duration annotation (dag::mark)
};

enum class EdgeKind : std::uint8_t { Seq = 0, Fifo = 1, Enq = 2, Cause = 3 };

struct Node {
  NodeKind kind = NodeKind::Work;
  std::int8_t phase = 0;    ///< 0 none, 1 panel, 2 update (innermost hybrid span)
  std::int32_t iter = -1;   ///< driver iteration (counted at "hybrid/panel" begins)
  std::uint32_t tid = 0;    ///< trace-recorder thread id (shared with trace files)
  std::uint64_t stream = 0; ///< process-unique stream id (tasks/waits)
  std::uint64_t ticket = 0; ///< task ticket / wait cause ticket
  double t0_us = 0.0;
  double t1_us = 0.0;
  double enq_us = -1.0;     ///< tasks: host enqueue timestamp
  double bytes = 0.0;       ///< transfers: payload size
  std::int64_t cause = -1;      ///< waits: node index of the task blocked on
  std::int64_t enq_after = -1;  ///< tasks: host chain node after which enqueued
  std::string label;            ///< task label / span "cat/name" / wait kind
  std::string site;             ///< waits: interned "kind@file:line" call site
  [[nodiscard]] double dur_us() const noexcept { return t1_us > t0_us ? t1_us - t0_us : 0.0; }
};

struct Edge {
  std::int64_t src = -1;
  std::int64_t dst = -1;
  EdgeKind kind = EdgeKind::Seq;
};

struct Graph {
  std::vector<Node> nodes;
  std::vector<Edge> edges;
  /// Work/Wait/Mark indices of the primary host thread, in program order —
  /// the replay script the what-if scheduler drives.
  std::vector<std::int64_t> host_order;
  double t0_us = 0.0;
  double t1_us = 0.0;

  [[nodiscard]] double wall_s() const noexcept {
    return t1_us > t0_us ? (t1_us - t0_us) / 1e6 : 0.0;
  }
  [[nodiscard]] std::size_t count(NodeKind k) const noexcept;
  [[nodiscard]] std::size_t count(EdgeKind k) const noexcept;

  /// Full dump (schema in EXPERIMENTS.md; parse back with parse_graph).
  [[nodiscard]] std::string to_json() const;
};

/// Inverse of Graph::to_json() over a parsed *_dag.json document. Throws
/// json::parse_error on schema mismatch.
[[nodiscard]] Graph parse_graph(const json::Value& root);

// --- Analysis ---------------------------------------------------------------

/// One (site, wait kind, cause label) group of the blocking-edge table.
struct CauseGroup {
  std::string site;        ///< "synchronize@hybrid_gehrd.cpp:79"
  std::string kind;        ///< "synchronize" | "event_wait"
  std::string waiting_on;  ///< cause task label ("dev.gemv", "d2h", ...); "unresolved"
  std::uint64_t count = 0;
  double seconds = 0.0;
};

/// Critical-path segment: consecutive-path nodes aggregated by (kind, label).
struct PathSegment {
  std::string label;
  NodeKind kind = NodeKind::Work;
  std::uint64_t count = 0;
  double seconds = 0.0;
};

struct Analysis {
  double wall_s = 0.0;
  double critical_path_s = 0.0;       ///< longest chain over all edge kinds
  double critical_path_data_s = 0.0;  ///< Fifo edges excluded (reordering bound)
  double host_blocked_s = 0.0;        ///< sum of Wait durations
  double attributed_s = 0.0;          ///< blocked time with a resolved cause + site
  double attributed_frac = 0.0;
  std::vector<CauseGroup> blocking;   ///< sorted by seconds, descending
  std::vector<PathSegment> path;      ///< full-CP composition, sorted by seconds
  std::vector<double> slack_s;        ///< per node, data-edge CPM slack
};

[[nodiscard]] Analysis analyze(const Graph& g);

// --- What-if scheduling -----------------------------------------------------

/// Stream count that models "one stream per iteration".
inline constexpr int kInfiniteStreams = 1 << 20;

struct Scenario {
  std::string name;
  int lookahead = 0;      ///< panels of update work the host may leave in flight
  int streams = 1;        ///< virtual streams (1 = recorded FIFO; kInfiniteStreams)
  double dev_scale = 1.0; ///< duration multiplier for dev.* compute tasks
};

struct Prediction {
  Scenario scenario;
  double wall_s = 0.0;
  double device_busy_s = 0.0;
  double host_blocked_s = 0.0;
  double overlap_fraction = 0.0;  ///< same definition as the profiler (DESIGN.md §8)
  double speedup = 0.0;           ///< recorded wall / predicted wall
};

/// Replay the recorded host program under `sc` (see DESIGN.md §12 for the
/// model's assumptions) and predict the resulting timeline.
[[nodiscard]] Prediction simulate(const Graph& g, const Scenario& sc);

/// The standard scenario table benches embed: replay, 1- and 2-panel
/// lookahead, infinite streams, and (when 0 < dev_gemm_scale < 1) 1-panel
/// lookahead with device compute scaled to the measured roofline.
[[nodiscard]] std::vector<Scenario> default_scenarios(double dev_gemm_scale);

/// The `dag` section of bench_*.json (schema in EXPERIMENTS.md).
[[nodiscard]] std::string section_json(const Graph& g, const Analysis& a,
                                       const std::vector<Prediction>& what_if);

/// Human-readable summary: totals, top blocking edges, what-if table.
void print_analysis(const Graph& g, const Analysis& a,
                    const std::vector<Prediction>& what_if, std::FILE* out);

// --- Hot-path hooks (hybrid layer + trace recorder) -------------------------

namespace detail {
/// Same contract as profile_detail::active(): one relaxed load.
[[nodiscard]] bool active() noexcept;

/// True on a stream worker thread between task begin/end (so spans and
/// waits executed inside tasks are not double-counted as host activity).
[[nodiscard]] bool thread_in_task() noexcept;

void on_enqueue(std::uint64_t stream, std::uint64_t ticket, const char* label) noexcept;
void on_task_begin(std::uint64_t stream, std::uint64_t ticket, const char* label) noexcept;
void on_task_end(std::uint64_t stream, std::uint64_t ticket) noexcept;
void on_transfer(std::uint64_t stream, std::uint64_t ticket, double bytes) noexcept;
/// `kind` is "synchronize" or "event_wait"; `site` an interned call-site
/// label; `ticket` the newest ticket the wait can observe (0 = none).
void on_wait_begin(const char* kind, const char* site, std::uint64_t stream,
                   std::uint64_t ticket) noexcept;
void on_wait_end() noexcept;
/// Live feed from the trace recorder (already timestamped). Stream-category
/// spans and spans on in-task threads are ignored here — tasks and waits
/// arrive through the dedicated hooks above.
void on_span(char ph, const char* cat, const char* name, double ts_us) noexcept;
}  // namespace detail

}  // namespace fth::obs::dag

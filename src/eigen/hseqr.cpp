#include "eigen/hseqr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "lapack/gehrd.hpp"

namespace fth::eigen {

namespace {

/// Householder reflector for a 3-vector (x, y, z): returns v (v0 = 1
/// implicit) and tau with (I − tau·v·vᵀ)·[x y z]ᵀ = [β 0 0]ᵀ.
struct Reflector3 {
  double v1 = 0.0, v2 = 0.0, tau = 0.0;
};

Reflector3 make_reflector3(double x, double y, double z) {
  Reflector3 r;
  const double norm = std::sqrt(x * x + y * y + z * z);
  if (norm == 0.0) return r;
  const double beta = x >= 0.0 ? -norm : norm;
  r.tau = (beta - x) / beta;
  const double inv = 1.0 / (x - beta);
  r.v1 = y * inv;
  r.v2 = z * inv;
  return r;
}

/// Same for a 2-vector.
struct Reflector2 {
  double v1 = 0.0, tau = 0.0;
};

Reflector2 make_reflector2(double x, double y) {
  Reflector2 r;
  const double norm = std::sqrt(x * x + y * y);
  if (norm == 0.0) return r;
  const double beta = x >= 0.0 ? -norm : norm;
  r.tau = (beta - x) / beta;
  r.v1 = y / (x - beta);
  return r;
}

/// Eigenvalues of the trailing 2×2 block [[a, b], [c, d]].
void eig2x2(double a, double b, double c, double d, std::complex<double>& l1,
            std::complex<double>& l2) {
  const double tr = a + d;
  const double det = a * d - b * c;
  const double disc = 0.25 * tr * tr - det;
  if (disc >= 0.0) {
    const double rt = std::sqrt(disc);
    // Stable split: compute the larger-magnitude root first.
    const double half = 0.5 * tr;
    const double big = half >= 0.0 ? half + rt : half - rt;
    l1 = std::complex<double>(big, 0.0);
    l2 = std::complex<double>(big != 0.0 ? det / big : half - std::copysign(rt, half), 0.0);
  } else {
    const double im = std::sqrt(-disc);
    l1 = std::complex<double>(0.5 * tr, im);
    l2 = std::complex<double>(0.5 * tr, -im);
  }
}

}  // namespace

HseqrResult hseqr(MatrixView<double> h, const HseqrOptions& opt) {
  const index_t n = h.rows();
  FTH_CHECK(h.cols() == n, "hseqr: matrix must be square");
  HseqrResult res;
  res.eigenvalues.resize(static_cast<std::size_t>(n));
  if (n == 0) {
    res.converged = true;
    return res;
  }

  const double ulp = std::numeric_limits<double>::epsilon();
  const double smlnum = std::numeric_limits<double>::min() * (static_cast<double>(n) / ulp);

  index_t hi = n - 1;
  index_t stalls = 0;
  const index_t budget = opt.max_sweeps_per_eigenvalue * std::max<index_t>(n, 1);

  while (hi >= 0) {
    if (res.sweeps > budget) return res;  // converged stays false

    // Look for a negligible subdiagonal to deflate at.
    index_t lo = hi;
    while (lo > 0) {
      const double sub = std::abs(h(lo, lo - 1));
      const double diag = std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo));
      if (sub <= std::max(ulp * diag, smlnum)) {
        h(lo, lo - 1) = 0.0;
        break;
      }
      --lo;
    }

    if (lo == hi) {
      // 1×1 block: real eigenvalue.
      res.eigenvalues[static_cast<std::size_t>(hi)] = h(hi, hi);
      --hi;
      stalls = 0;
      if (hi < 0) break;
      continue;
    }
    if (lo == hi - 1) {
      // 2×2 block.
      std::complex<double> l1, l2;
      eig2x2(h(lo, lo), h(lo, hi), h(hi, lo), h(hi, hi), l1, l2);
      res.eigenvalues[static_cast<std::size_t>(lo)] = l1;
      res.eigenvalues[static_cast<std::size_t>(hi)] = l2;
      hi -= 2;
      stalls = 0;
      if (hi < 0) break;
      continue;
    }

    // Francis implicit double shift on the active block [lo, hi].
    ++res.sweeps;
    ++stalls;
    double s = h(hi - 1, hi - 1) + h(hi, hi);
    double t = h(hi - 1, hi - 1) * h(hi, hi) - h(hi - 1, hi) * h(hi, hi - 1);
    if (opt.exceptional_shifts && stalls > 0 && stalls % 10 == 0) {
      // Wilkinson's ad-hoc exceptional shift to break symmetric stalls.
      const double w = std::abs(h(hi, hi - 1)) + std::abs(h(hi - 1, hi - 2));
      s = 1.5 * w;
      t = 0.75 * 0.75 * w * w;
    }

    // First column of H² − s·H + t·I restricted to the active block.
    double x = h(lo, lo) * h(lo, lo) + h(lo, lo + 1) * h(lo + 1, lo) - s * h(lo, lo) + t;
    double y = h(lo + 1, lo) * (h(lo, lo) + h(lo + 1, lo + 1) - s);
    double z = h(lo + 2, lo + 1) * h(lo + 1, lo);

    for (index_t k = lo; k <= hi - 2; ++k) {
      const Reflector3 r = make_reflector3(x, y, z);
      if (r.tau != 0.0) {
        const index_t c0 = std::max(lo, k - 1);
        // Apply (I − tau v vᵀ) from the left to rows k..k+2.
        for (index_t c = c0; c <= hi; ++c) {
          const double sum = h(k, c) + r.v1 * h(k + 1, c) + r.v2 * h(k + 2, c);
          const double w = r.tau * sum;
          h(k, c) -= w;
          h(k + 1, c) -= w * r.v1;
          h(k + 2, c) -= w * r.v2;
        }
        // Apply from the right to columns k..k+2.
        const index_t r1 = std::min(hi, k + 3);
        for (index_t rr = lo; rr <= r1; ++rr) {
          const double sum = h(rr, k) + r.v1 * h(rr, k + 1) + r.v2 * h(rr, k + 2);
          const double w = r.tau * sum;
          h(rr, k) -= w;
          h(rr, k + 1) -= w * r.v1;
          h(rr, k + 2) -= w * r.v2;
        }
      }
      x = h(k + 1, k);
      y = h(k + 2, k);
      z = (k + 3 <= hi) ? h(k + 3, k) : 0.0;
      if (k > lo) {
        h(k + 1, k - 1) = 0.0;
        h(k + 2, k - 1) = 0.0;
      }
    }
    // Final 2-element reflector at the bottom of the sweep.
    {
      const index_t k = hi - 1;
      const Reflector2 r = make_reflector2(x, y);
      if (r.tau != 0.0) {
        for (index_t c = k - 1 >= lo ? k - 1 : lo; c <= hi; ++c) {
          const double sum = h(k, c) + r.v1 * h(k + 1, c);
          const double w = r.tau * sum;
          h(k, c) -= w;
          h(k + 1, c) -= w * r.v1;
        }
        for (index_t rr = lo; rr <= hi; ++rr) {
          const double sum = h(rr, k) + r.v1 * h(rr, k + 1);
          const double w = r.tau * sum;
          h(rr, k) -= w;
          h(rr, k + 1) -= w * r.v1;
        }
        if (k > lo) h(k + 1, k - 1) = 0.0;
      }
    }
  }
  res.converged = true;
  return res;
}

HseqrResult eigenvalues(MatrixView<const double> a, const HseqrOptions& opt) {
  const index_t n = a.rows();
  Matrix<double> work(a);
  if (n > 2) {
    std::vector<double> tau(static_cast<std::size_t>(n - 1));
    lapack::gehrd(work.view(), VectorView<double>(tau.data(), n - 1));
  }
  Matrix<double> h = lapack::extract_hessenberg(work.cview());
  return hseqr(h.view(), opt);
}

}  // namespace fth::eigen

// Eigenvalues of a symmetric tridiagonal matrix (implicit QL/QR with
// Wilkinson shift — the eigenvalues-only path of LAPACK's dsteqr/dsterf
// family). The natural consumer of the tridiagonal reduction: together
// with (ft_)sytrd it completes the symmetric eigensolver pipeline.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fth::eigen {

struct SteqrOptions {
  index_t max_sweeps_per_eigenvalue = 30;
};

struct SteqrResult {
  std::vector<double> eigenvalues;  ///< ascending
  bool converged = false;
  index_t sweeps = 0;
};

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `d`
/// (length n) and off-diagonal `e` (length n−1). Inputs are not modified.
SteqrResult steqr(VectorView<const double> d, VectorView<const double> e,
                  const SteqrOptions& opt = {});

/// Convenience: eigenvalues of a dense symmetric matrix via sytrd + steqr.
SteqrResult symmetric_eigenvalues(MatrixView<const double> a, const SteqrOptions& opt = {});

}  // namespace fth::eigen

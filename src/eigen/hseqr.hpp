// Eigenvalues of an upper Hessenberg matrix (Francis double-shift QR).
//
// The downstream consumer that motivates Hessenberg reduction: the paper's
// introduction frames H = QᵀAQ as "an important intermediate step in the
// Hessenberg QR algorithm which is used to compute the eigenvalues of A".
// This module closes that loop so the examples can run the full pipeline
// A → (fault-tolerant) H → eigenvalues.
#pragma once

#include <complex>
#include <vector>

#include "la/matrix.hpp"

namespace fth::eigen {

struct HseqrOptions {
  index_t max_sweeps_per_eigenvalue = 40;  ///< iteration budget before failure
  bool exceptional_shifts = true;          ///< Wilkinson's ad-hoc shift every 10 stalls
};

struct HseqrResult {
  std::vector<std::complex<double>> eigenvalues;
  bool converged = false;
  index_t sweeps = 0;  ///< total implicit QR sweeps performed
};

/// Compute all eigenvalues of the upper Hessenberg matrix `h` (contents
/// are destroyed). Standard implicit double-shift (Francis) QR with
/// deflation; real pairs come back as exact-conjugate complex values.
HseqrResult hseqr(MatrixView<double> h, const HseqrOptions& opt = {});

/// Convenience: eigenvalues of a general square matrix, via gehrd + hseqr.
HseqrResult eigenvalues(MatrixView<const double> a, const HseqrOptions& opt = {});

}  // namespace fth::eigen

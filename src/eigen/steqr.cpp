#include "eigen/steqr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "lapack/sytrd.hpp"

namespace fth::eigen {

namespace {

/// sqrt(a² + b²) without overflow (dlapy2).
double pythag(double a, double b) {
  const double aa = std::abs(a);
  const double ab = std::abs(b);
  const double mx = std::max(aa, ab);
  const double mn = std::min(aa, ab);
  if (mx == 0.0) return 0.0;
  const double r = mn / mx;
  return mx * std::sqrt(1.0 + r * r);
}

}  // namespace

SteqrResult steqr(VectorView<const double> dv, VectorView<const double> ev,
                  const SteqrOptions& opt) {
  const index_t n = dv.size();
  FTH_CHECK(ev.size() >= std::max<index_t>(n - 1, 0), "steqr: e too short");

  SteqrResult res;
  res.eigenvalues.resize(static_cast<std::size_t>(n));
  if (n == 0) {
    res.converged = true;
    return res;
  }

  // Working copies (the classic QL iteration mutates d and e in place).
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = dv[i];
  for (index_t i = 0; i + 1 < n; ++i) e[static_cast<std::size_t>(i)] = ev[i];

  const double eps = std::numeric_limits<double>::epsilon();
  const index_t budget = opt.max_sweeps_per_eigenvalue * std::max<index_t>(n, 1);

  for (index_t l = 0; l < n; ++l) {
    for (;;) {
      // Find a split point m ≥ l where e[m] is negligible.
      index_t m = l;
      while (m + 1 < n) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= eps * dd) break;
        ++m;
      }
      if (m == l) break;  // d[l] converged

      if (++res.sweeps > budget) return res;  // converged stays false

      // Wilkinson shift from the leading 2×2 of the active block.
      double g = (d[static_cast<std::size_t>(l + 1)] - d[static_cast<std::size_t>(l)]) /
                 (2.0 * e[static_cast<std::size_t>(l)]);
      double r = pythag(g, 1.0);
      g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
          e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));

      // Implicit QL sweep: chase the bulge from m−1 down to l.
      double s = 1.0, c = 1.0, p = 0.0;
      for (index_t i = m - 1; i >= l; --i) {
        double f = s * e[static_cast<std::size_t>(i)];
        const double b = c * e[static_cast<std::size_t>(i)];
        r = pythag(f, g);
        e[static_cast<std::size_t>(i + 1)] = r;
        if (r == 0.0) {
          // Deflate: annihilated off-diagonal mid-sweep.
          d[static_cast<std::size_t>(i + 1)] -= p;
          e[static_cast<std::size_t>(m)] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[static_cast<std::size_t>(i + 1)] - p;
        r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
        p = s * r;
        d[static_cast<std::size_t>(i + 1)] = g + p;
        g = c * r - b;
        if (i == l) break;  // index_t is signed but avoid wrapping below l
      }
      if (r == 0.0 && m - 1 >= l + 1) continue;
      d[static_cast<std::size_t>(l)] -= p;
      e[static_cast<std::size_t>(l)] = g;
      e[static_cast<std::size_t>(m)] = 0.0;
    }
  }

  std::sort(d.begin(), d.end());
  res.eigenvalues = std::move(d);
  res.converged = true;
  return res;
}

SteqrResult symmetric_eigenvalues(MatrixView<const double> a, const SteqrOptions& opt) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "symmetric_eigenvalues: matrix must be square");
  if (n == 0) return steqr(VectorView<const double>(), VectorView<const double>(), opt);
  Matrix<double> work(a);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  std::vector<double> tau(e.size());
  lapack::sytrd(work.view(), VectorView<double>(d.data(), n),
                VectorView<double>(e.data(), static_cast<index_t>(e.size())),
                VectorView<double>(tau.data(), static_cast<index_t>(tau.size())));
  return steqr(VectorView<const double>(d.data(), n),
               VectorView<const double>(e.data(), static_cast<index_t>(e.size())), opt);
}

}  // namespace fth::eigen

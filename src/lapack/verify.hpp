// Result verification: the residuals reported in Tables II and III.
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// ‖A − Q·H·Qᵀ‖₁ / (N·‖A‖₁)  — the backward-stability residual of Table II.
double hessenberg_residual(MatrixView<const double> a, MatrixView<const double> q,
                           MatrixView<const double> h);

/// ‖Q·Qᵀ − I‖₁ / N  — the orthogonality residual of Table III.
double orthogonality_residual(MatrixView<const double> q);

/// True if every element below the first subdiagonal is ≤ tol in magnitude.
bool is_upper_hessenberg(MatrixView<const double> h, double tol = 0.0);

/// Convenience: run a factored reduction through both residual checks.
struct VerifyResult {
  double residual = 0.0;        ///< ‖A − QHQᵀ‖₁/(N‖A‖₁)
  double orthogonality = 0.0;   ///< ‖QQᵀ − I‖₁/N
  bool hessenberg = false;      ///< structural check on H
};

/// Verify a reduction given the original matrix, the factored output of
/// gehrd (H + reflectors), and tau.
VerifyResult verify_reduction(MatrixView<const double> a_orig,
                              MatrixView<const double> a_factored,
                              VectorView<const double> tau);

}  // namespace fth::lapack

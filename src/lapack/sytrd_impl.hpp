// Shared implementation of the latrd panel loop (internal header).
//
// Mirrors lahr2_impl.hpp: the tridiagonal panel reduction is identical on
// the host and hybrid paths except for the one operation that reads the
// trailing matrix — the symmetric matrix-vector product
// w_raw = A(k+j+1:n, k+j+1:n)·v. The provider functor abstracts it.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/matrix.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack::detail {

/// Runs the latrd (lower) column loop on panel columns [k, k+nb) of the
/// symmetric matrix `a` (lower triangle authoritative), producing the
/// reflector scalars `tau`, the off-diagonal entries `e`, and the update
/// matrix W (global rows k..n−1 used, columns 0..nb−1).
///
/// `big_symv(j, vj, w_col)` must compute w_col = A_sym(k+j+1:n, ..)·vj
/// against the start-of-panel trailing matrix (exactly what dlatrd's
/// DSYMV does — the trailing block is untouched during the panel; the
/// deferred rank-2 updates are folded in by the W recurrences below).
///
/// On exit the subdiagonal "unit" elements A(k+j+1, k+j) hold 1 (as in
/// LAPACK); the caller restores e[j] after the trailing update.
template <class BigSymv>
void latrd_panel(MatrixView<double> a, index_t k, index_t nb, VectorView<double> e,
                 VectorView<double> tau, MatrixView<double> w, BigSymv&& big_symv) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "latrd: matrix must be square");
  FTH_CHECK(k >= 0 && nb >= 1 && k + nb < n, "latrd: panel out of range");
  FTH_CHECK(w.rows() >= n && w.cols() >= nb, "latrd: W too small");
  FTH_CHECK(e.size() >= nb && tau.size() >= nb, "latrd: e/tau too short");

  std::vector<double> tmp_buf(static_cast<std::size_t>(nb));

  for (index_t j = 0; j < nb; ++j) {
    const index_t cj = k + j;        // global column being reduced
    const index_t len = n - cj;      // rows cj..n−1

    if (j > 0) {
      // Fold the previous reflectors' rank-2 updates into this column:
      // A(cj:n, cj) −= A(cj:n, k:cj)·W(cj, 0:j)ᵀ + W(cj:n, 0:j)·A(cj, k:cj)ᵀ.
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(a.block(cj, k, len, j)),
                 VectorView<const double>(w.row(cj).sub(0, j)), 1.0,
                 a.block(cj, cj, len, 1).col(0));
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(w.block(cj, 0, len, j)),
                 VectorView<const double>(a.row(cj).sub(k, j)), 1.0,
                 a.block(cj, cj, len, 1).col(0));
    }

    // Generate the reflector annihilating A(cj+2:n, cj).
    double alpha = a(cj + 1, cj);
    auto x = (cj + 2 < n) ? a.col(cj).sub(cj + 2, n - cj - 2) : VectorView<double>();
    larfg(alpha, x, tau[j]);
    e[j] = alpha;
    a(cj + 1, cj) = 1.0;  // LAPACK leaves the unit in place until after syr2k

    // W(cj+1:n, j) per the dlatrd recurrence.
    const index_t vlen = n - cj - 1;
    auto vj = a.block(cj + 1, cj, vlen, 1).col(0);
    VectorView<const double> vjc(vj.data(), vlen, 1);
    auto wcol = w.block(cj + 1, j, vlen, 1).col(0);

    big_symv(j, vjc, wcol);  // w := A_sym(cj+1:n, cj+1:n)·v

    if (j > 0) {
      VectorView<double> tmp(tmp_buf.data(), j);
      // tmp := W(cj+1:n, 0:j)ᵀ·v;  w −= A(cj+1:n, k:cj)·tmp
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(w.block(cj + 1, 0, vlen, j)), vjc,
                 0.0, tmp);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(a.block(cj + 1, k, vlen, j)),
                 VectorView<const double>(tmp), 1.0, wcol);
      // tmp := A(cj+1:n, k:cj)ᵀ·v;  w −= W(cj+1:n, 0:j)·tmp
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(a.block(cj + 1, k, vlen, j)), vjc,
                 0.0, tmp);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(w.block(cj + 1, 0, vlen, j)),
                 VectorView<const double>(tmp), 1.0, wcol);
    }
    blas::scal(tau[j], wcol);
    const double half_corr =
        -0.5 * tau[j] * blas::dot(VectorView<const double>(wcol), vjc);
    blas::axpy(half_corr, vjc, wcol);
  }
}

}  // namespace fth::lapack::detail

#include "lapack/reflectors.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"

namespace fth::lapack {

void larfg(double& alpha, VectorView<double> x, double& tau) {
  const index_t n = x.size() + 1;
  if (n <= 1) {
    tau = 0.0;
    return;
  }
  double xnorm = blas::nrm2<double>(x);
  if (xnorm == 0.0) {
    tau = 0.0;  // H = I
    return;
  }

  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const double safmin = std::numeric_limits<double>::min() /
                        std::numeric_limits<double>::epsilon();
  int scale_count = 0;
  double alpha_s = alpha;
  if (std::abs(beta) < safmin) {
    // xnorm and beta may be inaccurate; scale x and recompute (dlarfg).
    const double rsafmn = 1.0 / safmin;
    do {
      ++scale_count;
      blas::scal(rsafmn, x);
      beta *= rsafmn;
      alpha_s *= rsafmn;
    } while (std::abs(beta) < safmin && scale_count < 20);
    xnorm = blas::nrm2<double>(x);
    beta = -std::copysign(std::hypot(alpha_s, xnorm), alpha_s);
  }
  tau = (beta - alpha_s) / beta;
  blas::scal(1.0 / (alpha_s - beta), x);
  for (int k = 0; k < scale_count; ++k) beta *= safmin;
  alpha = beta;
}

void larf(Side side, VectorView<const double> v, double tau, MatrixView<double> c,
          VectorView<double> work) {
  if (tau == 0.0) return;
  if (side == Side::Left) {
    FTH_CHECK(v.size() == c.rows(), "larf left: v length must equal C rows");
    FTH_CHECK(work.size() >= c.cols(), "larf left: work too small");
    auto w = work.sub(0, c.cols());
    // w := Cᵀ v;  C := C − tau·v·wᵀ
    blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(c), v, 0.0, w);
    blas::ger(-tau, v, VectorView<const double>(w), c);
  } else {
    FTH_CHECK(v.size() == c.cols(), "larf right: v length must equal C cols");
    FTH_CHECK(work.size() >= c.rows(), "larf right: work too small");
    auto w = work.sub(0, c.rows());
    // w := C v;  C := C − tau·w·vᵀ
    blas::gemv(Trans::No, 1.0, MatrixView<const double>(c), v, 0.0, w);
    blas::ger(-tau, VectorView<const double>(w), v, c);
  }
}

void larft(Direction dir, StoreV storev, MatrixView<const double> v,
           VectorView<const double> tau, MatrixView<double> t) {
  FTH_CHECK(dir == Direction::Forward && storev == StoreV::Columnwise,
            "larft: only Forward/Columnwise storage is implemented");
  const index_t m = v.rows();
  const index_t k = v.cols();
  FTH_CHECK(tau.size() == k, "larft: tau length mismatch");
  FTH_CHECK(t.rows() >= k && t.cols() >= k, "larft: T too small");

  for (index_t i = 0; i < k; ++i) {
    if (tau[i] == 0.0) {
      for (index_t j = 0; j < i; ++j) t(j, i) = 0.0;
    } else {
      // T(0:i, i) := −tau(i) · V(i:m, 0:i)ᵀ · V(i:m, i), using the implicit
      // unit V(i,i)=1: the stored row V(i, 0:i) contributes directly.
      for (index_t j = 0; j < i; ++j) t(j, i) = -tau[i] * v(i, j);
      if (m > i + 1) {
        blas::gemv(Trans::Yes, -tau[i], v.block(i + 1, 0, m - i - 1, i),
                   v.block(i + 1, i, m - i - 1, 1).col(0), 1.0, t.block(0, i, i, 1).col(0));
      }
      // T(0:i, i) := T(0:i, 0:i) · T(0:i, i)
      if (i > 0) {
        blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
                   MatrixView<const double>(t.block(0, 0, i, i)), t.block(0, i, i, 1).col(0));
      }
    }
    t(i, i) = tau[i];
  }
}

void larfb(Side side, Trans trans, Direction dir, StoreV storev, MatrixView<const double> v,
           MatrixView<const double> t, MatrixView<double> c, MatrixView<double> work) {
  FTH_CHECK(dir == Direction::Forward && storev == StoreV::Columnwise,
            "larfb: only Forward/Columnwise storage is implemented");
  const index_t k = v.cols();
  if (k == 0 || c.empty()) return;
  FTH_CHECK(t.rows() >= k && t.cols() >= k, "larfb: T too small");

  // Applying H = I − V·T·Vᵀ:   (side L, trans N):  C −= V·(Cᵀ·V·Tᵀ)ᵀ
  //                            (side L, trans T):  C −= V·(Cᵀ·V·T)ᵀ
  //                            (side R, trans N):  C −= (C·V·T)·Vᵀ
  //                            (side R, trans T):  C −= (C·V·Tᵀ)·Vᵀ
  const Trans t_op = (side == Side::Left) == (trans == Trans::No) ? Trans::Yes : Trans::No;

  if (side == Side::Left) {
    const index_t m = c.rows();
    const index_t n = c.cols();
    FTH_CHECK(v.rows() == m, "larfb left: V rows must equal C rows");
    FTH_CHECK(work.rows() >= n && work.cols() >= k, "larfb left: work too small");
    auto w = work.block(0, 0, n, k);

    // W := C1ᵀ  (C1 = first k rows of C)
    for (index_t j = 0; j < k; ++j)
      for (index_t i = 0; i < n; ++i) w(i, j) = c(j, i);
    // W := W·V1 (V1 = top k×k unit lower triangle of V)
    blas::trmm(Side::Right, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
               v.block(0, 0, k, k), w);
    // W += C2ᵀ·V2
    if (m > k) {
      blas::gemm(Trans::Yes, Trans::No, 1.0,
                 MatrixView<const double>(c.block(k, 0, m - k, n)), v.block(k, 0, m - k, k),
                 1.0, w);
    }
    // W := W·op(T)
    blas::trmm(Side::Right, Uplo::Upper, t_op, Diag::NonUnit, 1.0, t.block(0, 0, k, k), w);
    // C2 −= V2·Wᵀ
    if (m > k) {
      blas::gemm(Trans::No, Trans::Yes, -1.0, v.block(k, 0, m - k, k),
                 MatrixView<const double>(w), 1.0, c.block(k, 0, m - k, n));
    }
    // W := W·V1ᵀ
    blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
               v.block(0, 0, k, k), w);
    // C1 −= Wᵀ
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < k; ++i) c(i, j) -= w(j, i);
  } else {
    const index_t m = c.rows();
    const index_t n = c.cols();
    FTH_CHECK(v.rows() == n, "larfb right: V rows must equal C cols");
    FTH_CHECK(work.rows() >= m && work.cols() >= k, "larfb right: work too small");
    auto w = work.block(0, 0, m, k);

    // W := C1 (first k columns of C)
    copy(MatrixView<const double>(c.block(0, 0, m, k)), MatrixView<double>(w));
    // W := W·V1
    blas::trmm(Side::Right, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
               v.block(0, 0, k, k), w);
    // W += C2·V2
    if (n > k) {
      blas::gemm(Trans::No, Trans::No, 1.0,
                 MatrixView<const double>(c.block(0, k, m, n - k)), v.block(k, 0, n - k, k),
                 1.0, w);
    }
    // W := W·op(T)
    blas::trmm(Side::Right, Uplo::Upper, t_op, Diag::NonUnit, 1.0, t.block(0, 0, k, k), w);
    // C2 −= W·V2ᵀ
    if (n > k) {
      blas::gemm(Trans::No, Trans::Yes, -1.0, MatrixView<const double>(w),
                 v.block(k, 0, n - k, k), 1.0, c.block(0, k, m, n - k));
    }
    // W := W·V1ᵀ
    blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
               v.block(0, 0, k, k), w);
    // C1 −= W
    for (index_t j = 0; j < k; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) -= w(i, j);
  }
}

}  // namespace fth::lapack

// Householder reflector kernels (LAPACK larfg / larf / larft / larfb).
//
// Conventions (all 0-based):
//  * An elementary reflector is H = I − tau·v·vᵀ with v(0) = 1.
//  * Block reflectors use the compact WY representation H = I − V·T·Vᵀ
//    where V is unit-lower-trapezoidal (Direction::Forward,
//    StoreV::Columnwise — the only storage scheme the Hessenberg and QR
//    paths need; other combinations are rejected by precondition check).
//    Only the strictly-lower part of V is read; the unit diagonal is
//    implicit and entries on/above the diagonal are ignored, so V may
//    alias the factorized panel of A exactly as in LAPACK.
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Generate an elementary reflector H = I − tau·[1;v]·[1;v]ᵀ such that
/// H·[alpha; x] = [beta; 0]. On exit `alpha` holds beta and `x` holds v.
/// Handles subnormal scaling like LAPACK dlarfg.
void larfg(double& alpha, VectorView<double> x, double& tau);

/// Apply the elementary reflector H = I − tau·v·vᵀ to C from `side`.
/// `v` is the full reflector vector (caller stores the leading 1).
/// `work` must have length C.cols() (Side::Left) or C.rows() (Side::Right).
void larf(Side side, VectorView<const double> v, double tau, MatrixView<double> c,
          VectorView<double> work);

/// Form the k×k upper-triangular factor T of the block reflector
/// H = I − V·T·Vᵀ from the reflectors in V (m×k) and their scalars tau.
void larft(Direction dir, StoreV storev, MatrixView<const double> v,
           VectorView<const double> tau, MatrixView<double> t);

/// Apply the block reflector H (Trans::No) or Hᵀ (Trans::Yes) to C from
/// `side`. `work` must be at least C.cols()×k (Side::Left) or C.rows()×k
/// (Side::Right).
void larfb(Side side, Trans trans, Direction dir, StoreV storev, MatrixView<const double> v,
           MatrixView<const double> t, MatrixView<double> c, MatrixView<double> work);

}  // namespace fth::lapack

// QR factorization (LAPACK geqr2 / geqrf) and Q formation (orgqr).
//
// Substrate for the related-work baseline: the paper positions its on-line
// detection against the post-processing ABFT scheme of Du et al. for
// one-sided factorizations (LU/QR). ft/ftqr_post.hpp builds that baseline
// on top of this factorization.
#pragma once

#include <functional>

#include "la/matrix.hpp"

namespace fth::lapack {

/// Unblocked QR (LAPACK dgeqr2): A (m×n, m ≥ n) is overwritten with R in
/// the upper triangle and the reflector vectors below the diagonal.
void geqr2(MatrixView<double> a, VectorView<double> tau);

/// Called between panel iterations of geqrf (the stream of a hybrid
/// implementation would synchronize here); `next_panel` is the first
/// unfactored column. Used by the fault-injection studies.
using QrIterationHook = std::function<void(index_t boundary, index_t next_panel,
                                           MatrixView<double> a)>;

struct GeqrfOptions {
  index_t nb = 32;
};

/// Blocked QR (LAPACK dgeqrf).
void geqrf(MatrixView<double> a, VectorView<double> tau, const GeqrfOptions& opt = {},
           const QrIterationHook& hook = {});

/// Form the m×m orthogonal Q from a geqrf-factored matrix (dorgqr,
/// blocked backward accumulation).
Matrix<double> orgqr(MatrixView<const double> a_factored, VectorView<const double> tau,
                     index_t nb = 32);

/// Copy out the upper triangular R (m×n) from a factored matrix.
Matrix<double> extract_r(MatrixView<const double> a_factored);

}  // namespace fth::lapack

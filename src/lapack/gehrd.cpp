#include "lapack/gehrd.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "lapack/lahr2_impl.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack {

void gehd2(MatrixView<double> a, VectorView<double> tau) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "gehd2: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "gehd2: tau too short");
  if (n <= 2 && n >= 1) {
    for (index_t i = 0; i + 1 < n; ++i) tau[i] = 0.0;
    // A 1×1 or 2×2 matrix is already Hessenberg; 2×2 still gets tau=0
    // because its single reflector has an empty tail.
    if (n == 2) tau[0] = 0.0;
    return;
  }

  std::vector<double> work_buf(static_cast<std::size_t>(n));
  VectorView<double> work(work_buf.data(), n);

  for (index_t i = 0; i + 1 < n; ++i) {
    // Generate H(i) to annihilate A(i+2:n, i).
    double alpha = a(i + 1, i);
    auto x = (i + 2 < n) ? a.col(i).sub(i + 2, n - i - 2) : VectorView<double>();
    larfg(alpha, x, tau[i]);
    const double ei = alpha;

    // v lives in A(i+1:n, i) with the leading 1 stored temporarily.
    a(i + 1, i) = 1.0;
    auto v = a.block(i + 1, i, n - i - 1, 1).col(0);
    VectorView<const double> vc(v.data(), v.size(), v.inc());

    // A(0:n, i+1:n) := A·H(i)   (right update)
    larf(Side::Right, vc, tau[i], a.block(0, i + 1, n, n - i - 1), work);
    // A(i+1:n, i+1:n) := H(i)·A (left update; H is symmetric)
    larf(Side::Left, vc, tau[i], a.block(i + 1, i + 1, n - i - 1, n - i - 1), work);

    a(i + 1, i) = ei;
  }
}

void lahr2(MatrixView<double> a, index_t k, index_t nb, MatrixView<double> t,
           MatrixView<double> y, VectorView<double> tau) {
  const index_t n = a.rows();
  // The big per-column product reads the trailing matrix directly from the
  // host matrix on this path.
  detail::lahr2_panel(a, k, nb, t, y, tau,
                      [&](index_t j, VectorView<const double> vj, VectorView<double> y_col) {
                        const index_t cj = k + j;
                        blas::gemv(Trans::No, 1.0,
                                   MatrixView<const double>(
                                       a.block(k + 1, cj + 1, n - k - 1, n - cj - 1)),
                                   vj, 0.0, y_col);
                      });

  // -- Top block of Y: Y(0:k+1, :) = A(0:k+1, k+1:n)·V·T. -----------------
  const index_t up = k + 1;
  copy(MatrixView<const double>(a.block(0, k + 1, up, nb)), y.block(0, 0, up, nb));
  blas::trmm(Side::Right, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
             MatrixView<const double>(a.block(k + 1, k, nb, nb)), y.block(0, 0, up, nb));
  if (n > k + 1 + nb) {
    blas::gemm(Trans::No, Trans::No, 1.0,
               MatrixView<const double>(a.block(0, k + 1 + nb, up, n - k - 1 - nb)),
               MatrixView<const double>(a.block(k + 1 + nb, k, n - k - 1 - nb, nb)), 1.0,
               y.block(0, 0, up, nb));
  }
  blas::trmm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
             MatrixView<const double>(t.block(0, 0, nb, nb)), y.block(0, 0, up, nb));
}

void gehrd(MatrixView<double> a, VectorView<double> tau, const GehrdOptions& opt) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "gehrd: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "gehrd: tau too short");
  FTH_CHECK(opt.nb >= 1, "gehrd: block size must be positive");

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);

  Matrix<double> t(nb, nb);
  Matrix<double> y(n, nb);
  Matrix<double> work(n, nb);

  index_t i = 0;
  // Blocked phase: stop once the remaining problem is small.
  while (n - i > nx + 1) {
    const index_t ib = std::min(nb, n - i - 1);
    lahr2(a, i, ib, t.view(), y.view(), tau.sub(i, ib));

    // Right update of the trailing columns: A(0:n, i+ib:n) −= Y·V2ᵀ.
    // V2 = A(i+ib:n, i:i+ib); its top-right element is the implicit unit of
    // the last panel column, temporarily set to 1 (the LAPACK "EI" trick).
    const double ei = a(i + ib, i + ib - 1);
    a(i + ib, i + ib - 1) = 1.0;
    blas::gemm(Trans::No, Trans::Yes, -1.0,
               MatrixView<const double>(y.block(0, 0, n, ib)),
               MatrixView<const double>(a.block(i + ib, i, n - i - ib, ib)), 1.0,
               a.block(0, i + ib, n, n - i - ib));
    a(i + ib, i + ib - 1) = ei;

    // Right update of the panel's own upper rows:
    // A(0:i+1, i+1:i+ib) −= Y(0:i+1, 0:ib−1)·V1ᵀ (V1 unit lower triangular).
    blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
               MatrixView<const double>(a.block(i + 1, i, ib - 1, ib - 1)),
               y.block(0, 0, i + 1, ib - 1));
    for (index_t j = 0; j + 1 < ib; ++j) {
      blas::axpy(-1.0, VectorView<const double>(y.block(0, j, i + 1, 1).col(0)),
                 a.block(0, i + 1 + j, i + 1, 1).col(0));
    }

    // Left update: A(i+1:n, i+ib:n) := Hᵀ·A(i+1:n, i+ib:n).
    larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise,
          MatrixView<const double>(a.block(i + 1, i, n - i - 1, ib)),
          MatrixView<const double>(t.block(0, 0, ib, ib)),
          a.block(i + 1, i + ib, n - i - 1, n - i - ib), work.view());

    i += ib;
  }

  // Unblocked phase on the remaining trailing matrix.
  if (i + 1 < n) {
    // gehd2 on the trailing (n−i)×(n−i) block would lose the couplings to
    // the finished part, so run the unblocked algorithm on the full matrix
    // but starting at column i: inline variant of gehd2 with offset.
    std::vector<double> wbuf(static_cast<std::size_t>(n));
    VectorView<double> w(wbuf.data(), n);
    for (index_t c = i; c + 1 < n; ++c) {
      double alpha = a(c + 1, c);
      auto x = (c + 2 < n) ? a.col(c).sub(c + 2, n - c - 2) : VectorView<double>();
      larfg(alpha, x, tau[c]);
      const double ei = alpha;
      a(c + 1, c) = 1.0;
      VectorView<const double> v(a.block(c + 1, c, n - c - 1, 1).col(0).data(), n - c - 1, 1);
      larf(Side::Right, v, tau[c], a.block(0, c + 1, n, n - c - 1), w);
      larf(Side::Left, v, tau[c], a.block(c + 1, c + 1, n - c - 1, n - c - 1), w);
      a(c + 1, c) = ei;
    }
  }
}

Matrix<double> extract_hessenberg(MatrixView<const double> a_factored) {
  const index_t n = a_factored.rows();
  Matrix<double> h(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t last = std::min(j + 1, n - 1);
    for (index_t i = 0; i <= last; ++i) h(i, j) = a_factored(i, j);
  }
  return h;
}

}  // namespace fth::lapack

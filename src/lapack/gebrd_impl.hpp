// Shared implementation of the labrd panel loop (internal header).
//
// Same pattern as lahr2_impl/sytrd_impl: the bidiagonal panel reduction is
// identical on the host and hybrid paths except for the two operations
// that read the trailing matrix — the column product
// y_raw = A(cj:n, cj+1:n)ᵀ·v and the row product x_raw = A(cj+1:n, cj+1:n)·u.
// The provider functors abstract exactly those.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/matrix.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack::detail {

/// Runs the labrd column loop on panel rows/columns [k, k+nb) of the
/// square matrix `a` (upper-bidiagonal, m = n ≥ k+nb+1 assumed by the
/// blocked caller). Produces d/e/tauq/taup for the panel and the X and Y
/// update matrices (global rows used).
///
/// `big_gemv_y(j, v, y_col)` must compute y_col = A(cj:n, cj+1:n)ᵀ·v and
/// `big_gemv_x(j, u, x_col)` must compute x_col = A(cj+1:n, cj+1:n)·u,
/// both against the start-of-panel trailing matrix.
///
/// On exit the pivot positions A(cj,cj) and A(cj,cj+1) hold 1 (LAPACK
/// leaves the units in place); the caller restores d/e after the trailing
/// update.
template <class BigGemvY, class BigGemvX>
void labrd_panel(MatrixView<double> a, index_t k, index_t nb, VectorView<double> d,
                 VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
                 MatrixView<double> x, MatrixView<double> y, BigGemvY&& big_gemv_y,
                 BigGemvX&& big_gemv_x) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "labrd: matrix must be square");
  FTH_CHECK(k >= 0 && nb >= 1 && k + nb < n, "labrd: panel out of range");
  FTH_CHECK(x.rows() >= n && x.cols() >= nb && y.rows() >= n && y.cols() >= nb,
            "labrd: X/Y too small");
  FTH_CHECK(d.size() >= nb && e.size() >= nb && tauq.size() >= nb && taup.size() >= nb,
            "labrd: outputs too short");

  std::vector<double> tmp_buf(static_cast<std::size_t>(nb) + 1);

  for (index_t j = 0; j < nb; ++j) {
    const index_t cj = k + j;
    const index_t mlen = n - cj;      // rows cj..n−1
    const index_t nlen = n - cj - 1;  // cols cj+1..n−1

    // Fold the previous reflectors into column cj.
    if (j > 0) {
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(a.block(cj, k, mlen, j)),
                 VectorView<const double>(y.row(cj).sub(0, j)), 1.0,
                 a.block(cj, cj, mlen, 1).col(0));
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(x.block(cj, 0, mlen, j)),
                 VectorView<const double>(a.block(k, cj, j, 1).col(0)), 1.0,
                 a.block(cj, cj, mlen, 1).col(0));
    }

    // Left reflector H(j): annihilate A(cj+1:n, cj), pivot on the diagonal.
    double alpha = a(cj, cj);
    auto xq = (cj + 1 < n) ? a.col(cj).sub(cj + 1, mlen - 1) : VectorView<double>();
    larfg(alpha, xq, tauq[j]);
    d[j] = alpha;
    a(cj, cj) = 1.0;

    // Y(cj+1:n, j) — the column of the right-update aggregate.
    auto v = a.block(cj, cj, mlen, 1).col(0);
    VectorView<const double> vc(v.data(), mlen, 1);
    auto ycol = y.block(cj + 1, j, nlen, 1).col(0);
    big_gemv_y(j, vc, ycol);
    {
      VectorView<double> tmp(tmp_buf.data(), j);
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(a.block(cj, k, mlen, j)), vc, 0.0,
                 tmp);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(y.block(cj + 1, 0, nlen, j)),
                 VectorView<const double>(tmp), 1.0, ycol);
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(x.block(cj, 0, mlen, j)), vc, 0.0,
                 tmp);
      blas::gemv(Trans::Yes, -1.0, MatrixView<const double>(a.block(k, cj + 1, j, nlen)),
                 VectorView<const double>(tmp), 1.0, ycol);
      blas::scal(tauq[j], ycol);
    }

    // Update row A(cj, cj+1:n) with everything so far.
    {
      auto row = a.row(cj).sub(cj + 1, nlen);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(y.block(cj + 1, 0, nlen, j + 1)),
                 VectorView<const double>(a.row(cj).sub(k, j + 1)), 1.0, row);
      blas::gemv(Trans::Yes, -1.0, MatrixView<const double>(a.block(k, cj + 1, j, nlen)),
                 VectorView<const double>(x.row(cj).sub(0, j)), 1.0, row);
    }

    // Right reflector G(j): annihilate A(cj, cj+2:n), pivot on the
    // superdiagonal.
    double beta = a(cj, cj + 1);
    auto xr = (cj + 2 < n) ? a.row(cj).sub(cj + 2, nlen - 1) : VectorView<double>();
    larfg(beta, xr, taup[j]);
    e[j] = beta;
    a(cj, cj + 1) = 1.0;

    // X(cj+1:n, j) — the column of the left-update aggregate.
    auto u = a.row(cj).sub(cj + 1, nlen);
    VectorView<const double> uc(u.data(), nlen, u.inc());
    auto xcol = x.block(cj + 1, j, nlen, 1).col(0);
    big_gemv_x(j, uc, xcol);
    {
      VectorView<double> tmp(tmp_buf.data(), j + 1);
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(y.block(cj + 1, 0, nlen, j + 1)),
                 uc, 0.0, tmp);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(a.block(cj + 1, k, nlen, j + 1)),
                 VectorView<const double>(tmp), 1.0, xcol);
      VectorView<double> tmp2(tmp_buf.data(), j);
      blas::gemv(Trans::No, 1.0, MatrixView<const double>(a.block(k, cj + 1, j, nlen)), uc,
                 0.0, tmp2);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(x.block(cj + 1, 0, nlen, j)),
                 VectorView<const double>(tmp2), 1.0, xcol);
      blas::scal(taup[j], xcol);
    }
  }
}

}  // namespace fth::lapack::detail

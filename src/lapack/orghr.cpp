#include "lapack/orghr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack {

Matrix<double> materialize_v(MatrixView<const double> a_factored, index_t k, index_t nb) {
  const index_t n = a_factored.rows();
  FTH_CHECK(k >= 0 && nb >= 1 && k + nb < n, "materialize_v: panel out of range");
  const index_t rows = n - k - 1;
  Matrix<double> v(rows, nb);
  materialize_v_into(a_factored, k, nb, v.view());
  return v;
}

void materialize_v_into(MatrixView<const double> a_factored, index_t k, index_t nb,
                        MatrixView<double> v) {
  const index_t n = a_factored.rows();
  FTH_CHECK(k >= 0 && nb >= 1 && k + nb < n, "materialize_v_into: panel out of range");
  const index_t rows = n - k - 1;
  FTH_CHECK(v.rows() >= rows && v.cols() >= nb, "materialize_v_into: view too small");
  for (index_t j = 0; j < nb; ++j) {
    // Reflector k+j: unit at row j (global k+j+1), tail from the factored
    // panel below it, explicit zeros above.
    for (index_t i = 0; i < j; ++i) v(i, j) = 0.0;
    v(j, j) = 1.0;
    for (index_t i = j + 1; i < rows; ++i) v(i, j) = a_factored(k + 1 + i, k + j);
  }
}

Matrix<double> orghr(MatrixView<const double> a_factored, VectorView<const double> tau,
                     index_t nb) {
  const index_t n = a_factored.rows();
  FTH_CHECK(a_factored.cols() == n, "orghr: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "orghr: tau too short");
  FTH_CHECK(nb >= 1, "orghr: block size must be positive");

  Matrix<double> q(n, n);
  set_identity(q.view());
  if (n <= 2) return q;

  // Reflector i (i = 0..n−3) acts on global rows/columns i+1..n−1.
  // Accumulate Q = H(0)·(H(1)·(····I)) backwards in blocks: each block
  // [s, s+ib) is applied from the left to the already-accumulated product,
  // which is identity outside rows/cols ≥ s+1.
  const index_t k = n - 2;  // number of non-trivial reflectors
  Matrix<double> t(nb, nb);
  Matrix<double> work(n, nb);

  index_t s = ((k - 1) / nb) * nb;
  for (;;) {
    const index_t ib = std::min(nb, k - s);
    Matrix<double> v = materialize_v(a_factored, s, ib);
    larft(Direction::Forward, StoreV::Columnwise, v.view(), tau.sub(s, ib),
          t.view());
    larfb(Side::Left, Trans::No, Direction::Forward, StoreV::Columnwise, v.view(),
          t.view(), q.block(s + 1, s + 1, n - s - 1, n - s - 1), work.view());
    if (s == 0) break;
    s -= nb;
  }
  return q;
}

}  // namespace fth::lapack

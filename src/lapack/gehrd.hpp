// Hessenberg reduction drivers (LAPACK gehd2 / lahr2 / gehrd).
//
// All routines reduce a square matrix A to upper Hessenberg form
// H = Qᵀ·A·Q, Q = H(0)·H(1)···H(n−2), overwriting A LAPACK-style: the
// upper Hessenberg result is in the upper triangle + first subdiagonal,
// and reflector i's vector v is stored in A(i+2:n, i) (v(0)=1 implicit).
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Unblocked Hessenberg reduction (LAPACK dgehd2). `tau` must have length
/// max(n−1, 0).
void gehd2(MatrixView<double> a, VectorView<double> tau);

/// Panel reduction for the blocked algorithm (LAPACK dlahr2).
///
/// Reduces panel columns k..k+nb−1 of the n×n matrix `a` in place and
/// returns the compact-WY factors of the panel's block reflector:
///  * `t`   — nb×nb upper triangular T,
///  * `y`   — n×nb matrix Y = A·V·T (full height: the lower rows are
///            produced inside the column loop, the top k+1 rows at the end),
///  * `tau` — the nb reflector scalars.
/// The subdiagonal entries of the panel hold the beta values on exit (the
/// trailing one, A(k+nb, k+nb−1), is restored exactly as LAPACK does).
void lahr2(MatrixView<double> a, index_t k, index_t nb, MatrixView<double> t,
           MatrixView<double> y, VectorView<double> tau);

/// Tuning knobs for the blocked reduction.
struct GehrdOptions {
  index_t nb = 32;   ///< block (panel) width
  index_t nx = 128;  ///< crossover: switch to gehd2 when the trailing size drops below
};

/// Blocked Hessenberg reduction (LAPACK dgehrd, Algorithm 1 of the paper).
void gehrd(MatrixView<double> a, VectorView<double> tau, const GehrdOptions& opt = {});

/// Copy out the upper Hessenberg factor H from a reduced (factored) matrix.
Matrix<double> extract_hessenberg(MatrixView<const double> a_factored);

}  // namespace fth::lapack

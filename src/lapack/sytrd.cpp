#include "lapack/sytrd.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "lapack/reflectors.hpp"
#include "lapack/sytrd_impl.hpp"

namespace fth::lapack {

void sytd2(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tau) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "sytd2: matrix must be square");
  FTH_CHECK(d.size() >= n, "sytd2: d too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                tau.size() >= std::max<index_t>(n - 1, 0),
            "sytd2: e/tau too short");

  std::vector<double> w_buf(static_cast<std::size_t>(n));

  for (index_t i = 0; i + 1 < n; ++i) {
    // Reflector H(i) annihilating A(i+2:n, i).
    double alpha = a(i + 1, i);
    auto x = (i + 2 < n) ? a.col(i).sub(i + 2, n - i - 2) : VectorView<double>();
    larfg(alpha, x, tau[i]);
    e[i] = alpha;

    if (tau[i] != 0.0) {
      a(i + 1, i) = 1.0;
      const index_t len = n - i - 1;
      auto v = a.block(i + 1, i, len, 1).col(0);
      VectorView<const double> vc(v.data(), len, 1);
      VectorView<double> w(w_buf.data(), len);
      // w := tau·A_sym·v;  w −= (tau/2)(wᵀv)·v;  A −= v·wᵀ + w·vᵀ.
      blas::symv(Uplo::Lower, tau[i],
                 MatrixView<const double>(a.block(i + 1, i + 1, len, len)), vc, 0.0, w);
      const double corr = -0.5 * tau[i] * blas::dot(VectorView<const double>(w), vc);
      blas::axpy(corr, vc, w);
      blas::syr2(Uplo::Lower, -1.0, vc, VectorView<const double>(w),
                 a.block(i + 1, i + 1, len, len));
      a(i + 1, i) = e[i];
    }
    d[i] = a(i, i);
  }
  if (n > 0) d[n - 1] = a(n - 1, n - 1);
}

void latrd(MatrixView<double> a, index_t k, index_t nb, VectorView<double> e,
           VectorView<double> tau, MatrixView<double> w) {
  const index_t n = a.rows();
  detail::latrd_panel(a, k, nb, e, tau, w,
                      [&](index_t j, VectorView<const double> vj, VectorView<double> w_col) {
                        const index_t cj = k + j;
                        blas::symv(Uplo::Lower, 1.0,
                                   MatrixView<const double>(
                                       a.block(cj + 1, cj + 1, n - cj - 1, n - cj - 1)),
                                   vj, 0.0, w_col);
                      });
}

void sytrd(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tau, const SytrdOptions& opt) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "sytrd: matrix must be square");
  FTH_CHECK(d.size() >= n, "sytrd: d too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                tau.size() >= std::max<index_t>(n - 1, 0),
            "sytrd: e/tau too short");
  FTH_CHECK(opt.nb >= 1, "sytrd: block size must be positive");

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);
  Matrix<double> w(n, nb);

  index_t i = 0;
  while (n - i > nx + 1) {
    const index_t ib = std::min(nb, n - i - 1);
    latrd(a, i, ib, e.sub(i, ib), tau.sub(i, ib), w.view());

    // Trailing update: A(i+ib:n, i+ib:n) −= V2·W2ᵀ + W2·V2ᵀ, lower triangle.
    // V2 = A(i+ib:n, i:i+ib) — its top-right element is the unit of the
    // last panel column, still set to 1 from latrd.
    const index_t tn = n - i - ib;
    blas::syr2k(Uplo::Lower, Trans::No, -1.0,
                MatrixView<const double>(a.block(i + ib, i, tn, ib)),
                MatrixView<const double>(w.block(i + ib, 0, tn, ib)), 1.0,
                a.block(i + ib, i + ib, tn, tn));

    // Restore the off-diagonal entries the panel left as units.
    for (index_t j = 0; j < ib; ++j) a(i + j + 1, i + j) = e[i + j];
    for (index_t j = 0; j < ib; ++j) d[i + j] = a(i + j, i + j);
    i += ib;
  }

  // Unblocked finish on the trailing block (self-contained: the trailing
  // block of a symmetric similarity never couples back to finished rows).
  {
    auto trail = a.block(i, i, n - i, n - i);
    sytd2(trail, d.sub(i, n - i),
          (i + 1 <= n - 1) ? e.sub(i, n - i - 1) : VectorView<double>(),
          (i + 1 <= n - 1) ? tau.sub(i, n - i - 1) : VectorView<double>());
  }
}

Matrix<double> tridiagonal_from(VectorView<const double> d, VectorView<const double> e) {
  const index_t n = d.size();
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0), "tridiagonal_from: e too short");
  Matrix<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[i];
    if (i + 1 < n) {
      t(i + 1, i) = e[i];
      t(i, i + 1) = e[i];
    }
  }
  return t;
}

bool is_tridiagonal(MatrixView<const double> t, double tol) {
  for (index_t j = 0; j < t.cols(); ++j) {
    for (index_t i = 0; i < t.rows(); ++i) {
      if (std::abs(i - j) <= 1) continue;
      if (std::abs(t(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace fth::lapack

#include "lapack/geqrf.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "la/blas3.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack {

namespace {

/// Materialize the QR reflector block for columns [s, s+ib) of an m×n
/// factored matrix: column j has its unit on row s+j, tail below, zeros
/// above.
Matrix<double> materialize_v_qr(MatrixView<const double> a, index_t s, index_t ib) {
  const index_t m = a.rows();
  Matrix<double> v(m - s, ib);
  for (index_t j = 0; j < ib; ++j) {
    v(j, j) = 1.0;
    for (index_t r = j + 1; r < m - s; ++r) v(r, j) = a(s + r, s + j);
  }
  return v;
}

}  // namespace

void geqr2(MatrixView<double> a, VectorView<double> tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  FTH_CHECK(m >= n, "geqr2: m >= n required");
  FTH_CHECK(tau.size() >= n, "geqr2: tau too short");

  std::vector<double> work_buf(static_cast<std::size_t>(std::max(m, n)));
  VectorView<double> work(work_buf.data(), static_cast<index_t>(work_buf.size()));

  for (index_t i = 0; i < n; ++i) {
    double alpha = a(i, i);
    auto x = (i + 1 < m) ? a.col(i).sub(i + 1, m - i - 1) : VectorView<double>();
    larfg(alpha, x, tau[i]);
    if (i + 1 < n) {
      const double di = alpha;
      a(i, i) = 1.0;
      VectorView<const double> v(a.block(i, i, m - i, 1).col(0).data(), m - i, 1);
      larf(Side::Left, v, tau[i], a.block(i, i + 1, m - i, n - i - 1), work);
      a(i, i) = di;
    } else {
      a(i, i) = alpha;
    }
  }
}

void geqrf(MatrixView<double> a, VectorView<double> tau, const GeqrfOptions& opt,
           const QrIterationHook& hook) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  FTH_CHECK(m >= n, "geqrf: m >= n required");
  FTH_CHECK(tau.size() >= n, "geqrf: tau too short");
  FTH_CHECK(opt.nb >= 1, "geqrf: block size must be positive");

  const index_t nb = opt.nb;
  Matrix<double> t(nb, nb);
  Matrix<double> work(std::max(m, n), nb);

  index_t i = 0;
  index_t boundary = 0;
  while (i < n) {
    const index_t ib = std::min(nb, n - i);
    // Panel factorization.
    geqr2(a.block(i, i, m - i, ib), tau.sub(i, ib));
    // Trailing update with the block reflector.
    if (i + ib < n) {
      Matrix<double> v = materialize_v_qr(MatrixView<const double>(a), i, ib);
      larft(Direction::Forward, StoreV::Columnwise, v.cview(), tau.sub(i, ib), t.view());
      larfb(Side::Left, Trans::Yes, Direction::Forward, StoreV::Columnwise, v.cview(),
            t.cview(), a.block(i, i + ib, m - i, n - i - ib), work.view());
    }
    i += ib;
    ++boundary;
    if (hook) hook(boundary, i, a);
  }
}

Matrix<double> orgqr(MatrixView<const double> a_factored, VectorView<const double> tau,
                     index_t nb) {
  const index_t m = a_factored.rows();
  const index_t k = std::min(a_factored.cols(), m);
  FTH_CHECK(tau.size() >= k, "orgqr: tau too short");
  Matrix<double> q(m, m);
  set_identity(q.view());
  if (m == 0 || k == 0) return q;

  Matrix<double> t(nb, nb);
  Matrix<double> work(m, nb);
  index_t s = ((k - 1) / nb) * nb;
  for (;;) {
    const index_t ib = std::min(nb, k - s);
    Matrix<double> v = materialize_v_qr(a_factored, s, ib);
    larft(Direction::Forward, StoreV::Columnwise, v.cview(), tau.sub(s, ib), t.view());
    larfb(Side::Left, Trans::No, Direction::Forward, StoreV::Columnwise, v.cview(),
          t.cview(), q.block(s, s, m - s, m - s), work.view());
    if (s == 0) break;
    s -= nb;
  }
  return q;
}

Matrix<double> extract_r(MatrixView<const double> a_factored) {
  const index_t m = a_factored.rows();
  const index_t n = a_factored.cols();
  Matrix<double> r(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, m - 1); ++i) r(i, j) = a_factored(i, j);
  return r;
}

}  // namespace fth::lapack

#include "lapack/verify.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas3.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/orghr.hpp"

namespace fth::lapack {

double hessenberg_residual(MatrixView<const double> a, MatrixView<const double> q,
                           MatrixView<const double> h) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n && q.rows() == n && q.cols() == n && h.rows() == n && h.cols() == n,
            "hessenberg_residual: dimension mismatch");
  if (n == 0) return 0.0;

  // R = A − Q·H·Qᵀ
  Matrix<double> qh(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, q, h, 0.0, qh.view());
  Matrix<double> r(a);
  blas::gemm(Trans::No, Trans::Yes, -1.0, qh.cview(), q, 1.0, r.view());

  const double na = norm_one(a);
  if (na == 0.0) return norm_one(r.cview());
  return norm_one(r.cview()) / (static_cast<double>(n) * na);
}

double orthogonality_residual(MatrixView<const double> q) {
  const index_t n = q.rows();
  FTH_CHECK(q.cols() == n, "orthogonality_residual: Q must be square");
  if (n == 0) return 0.0;
  Matrix<double> r(n, n);
  set_identity(r.view());
  blas::gemm(Trans::No, Trans::Yes, 1.0, q, q, -1.0, r.view());
  return norm_one(r.cview()) / static_cast<double>(n);
}

bool is_upper_hessenberg(MatrixView<const double> h, double tol) {
  for (index_t j = 0; j < h.cols(); ++j)
    for (index_t i = j + 2; i < h.rows(); ++i)
      if (std::abs(h(i, j)) > tol) return false;
  return true;
}

VerifyResult verify_reduction(MatrixView<const double> a_orig,
                              MatrixView<const double> a_factored,
                              VectorView<const double> tau) {
  VerifyResult out;
  const Matrix<double> h = extract_hessenberg(a_factored);
  const Matrix<double> q = orghr(a_factored, tau);
  out.residual = hessenberg_residual(a_orig, q.cview(), h.cview());
  out.orthogonality = orthogonality_residual(q.cview());
  out.hessenberg = is_upper_hessenberg(h.cview());
  return out;
}

}  // namespace fth::lapack

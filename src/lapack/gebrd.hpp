// Bidiagonal reduction (LAPACK gebd2 / labrd / gebrd, square upper variant).
//
// B = Qᵀ·A·P with B upper bidiagonal — the two-sided factorization behind
// the SVD, and the third member of the family the paper's conclusion
// targets. Storage on exit (square A):
//  * diagonal d and superdiagonal e of B,
//  * the Q reflectors' vectors in the columns, at and below the diagonal
//    (QR-style geometry: v(i) starts at row i),
//  * the P reflectors' vectors in the rows, right of the superdiagonal.
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Unblocked reduction (LAPACK dgebd2, square). `d`/`tauq` length n,
/// `e`/`taup` length max(n−1, 0).
void gebd2(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tauq, VectorView<double> taup);

/// Panel reduction (LAPACK dlabrd) on rows/columns [k, k+nb): see
/// gebrd_impl.hpp for the exact contract.
void labrd(MatrixView<double> a, index_t k, index_t nb, VectorView<double> d,
           VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
           MatrixView<double> x, MatrixView<double> y);

struct GebrdOptions {
  index_t nb = 32;
  index_t nx = 64;
};

/// Blocked reduction (LAPACK dgebrd, square).
void gebrd(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tauq, VectorView<double> taup, const GebrdOptions& opt = {});

/// Dense upper bidiagonal B from d and e.
Matrix<double> bidiagonal_from(VectorView<const double> d, VectorView<const double> e);

/// True if every element off the diagonal/superdiagonal is ≤ tol.
bool is_upper_bidiagonal(MatrixView<const double> b, double tol = 0.0);

/// Form Q (n×n) from the left reflectors of a gebrd-factored matrix
/// (QR-style: reflector i's vector starts on the diagonal).
Matrix<double> orgbr_q(MatrixView<const double> a_factored, VectorView<const double> tauq,
                       index_t nb = 32);

/// Form P (n×n) from the right reflectors (stored in the rows; reflector
/// i acts on columns i+1..n−1, the same shifted geometry as orghr).
Matrix<double> orgbr_p(MatrixView<const double> a_factored, VectorView<const double> taup,
                       index_t nb = 32);

}  // namespace fth::lapack

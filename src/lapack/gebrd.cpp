#include "lapack/gebrd.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "lapack/gebrd_impl.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack {

void gebd2(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tauq, VectorView<double> taup) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "gebd2: matrix must be square");
  FTH_CHECK(d.size() >= n && tauq.size() >= n, "gebd2: d/tauq too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                taup.size() >= std::max<index_t>(n - 1, 0),
            "gebd2: e/taup too short");

  std::vector<double> work_buf(static_cast<std::size_t>(n));
  VectorView<double> work(work_buf.data(), n);

  for (index_t i = 0; i < n; ++i) {
    // Left reflector: annihilate A(i+1:n, i), pivot on the diagonal.
    double alpha = a(i, i);
    auto xq = (i + 1 < n) ? a.col(i).sub(i + 1, n - i - 1) : VectorView<double>();
    larfg(alpha, xq, tauq[i]);
    d[i] = alpha;
    if (i + 1 <= n - 1) {
      a(i, i) = 1.0;
      VectorView<const double> v(a.block(i, i, n - i, 1).col(0).data(), n - i, 1);
      larf(Side::Left, v, tauq[i], a.block(i, i + 1, n - i, n - i - 1), work);
      a(i, i) = d[i];
    }

    if (i + 1 < n) {
      // Right reflector: annihilate A(i, i+2:n), pivot on the superdiagonal.
      double beta = a(i, i + 1);
      auto xr = (i + 2 < n) ? a.row(i).sub(i + 2, n - i - 2) : VectorView<double>();
      larfg(beta, xr, taup[i]);
      e[i] = beta;
      a(i, i + 1) = 1.0;
      auto urow = a.row(i).sub(i + 1, n - i - 1);
      VectorView<const double> u(urow.data(), n - i - 1, urow.inc());
      larf(Side::Right, u, taup[i], a.block(i + 1, i + 1, n - i - 1, n - i - 1), work);
      a(i, i + 1) = e[i];
    }
  }
}

void labrd(MatrixView<double> a, index_t k, index_t nb, VectorView<double> d,
           VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
           MatrixView<double> x, MatrixView<double> y) {
  const index_t n = a.rows();
  detail::labrd_panel(
      a, k, nb, d, e, tauq, taup, x, y,
      [&](index_t j, VectorView<const double> v, VectorView<double> ycol) {
        const index_t cj = k + j;
        blas::gemv(Trans::Yes, 1.0,
                   MatrixView<const double>(a.block(cj, cj + 1, n - cj, n - cj - 1)), v, 0.0,
                   ycol);
      },
      [&](index_t j, VectorView<const double> u, VectorView<double> xcol) {
        const index_t cj = k + j;
        blas::gemv(Trans::No, 1.0,
                   MatrixView<const double>(a.block(cj + 1, cj + 1, n - cj - 1, n - cj - 1)),
                   u, 0.0, xcol);
      });
}

void gebrd(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tauq, VectorView<double> taup, const GebrdOptions& opt) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "gebrd: matrix must be square");
  FTH_CHECK(d.size() >= n && tauq.size() >= n, "gebrd: d/tauq too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                taup.size() >= std::max<index_t>(n - 1, 0),
            "gebrd: e/taup too short");
  FTH_CHECK(opt.nb >= 1, "gebrd: block size must be positive");

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);
  Matrix<double> x(n, nb);
  Matrix<double> y(n, nb);

  index_t i = 0;
  while (n - i > nx + 1) {
    const index_t ib = std::min(nb, n - i - 1);
    labrd(a, i, ib, d.sub(i, ib), e.sub(i, ib), tauq.sub(i, ib), taup.sub(i, ib), x.view(),
          y.view());

    // Trailing update: A(i+ib:n, i+ib:n) −= V2·Y2ᵀ + X2·U2.
    const index_t tn = n - i - ib;
    blas::gemm(Trans::No, Trans::Yes, -1.0,
               MatrixView<const double>(a.block(i + ib, i, tn, ib)),
               MatrixView<const double>(y.block(i + ib, 0, tn, ib)), 1.0,
               a.block(i + ib, i + ib, tn, tn));
    blas::gemm(Trans::No, Trans::No, -1.0,
               MatrixView<const double>(x.block(i + ib, 0, tn, ib)),
               MatrixView<const double>(a.block(i, i + ib, ib, tn)), 1.0,
               a.block(i + ib, i + ib, tn, tn));

    // Restore the pivots the panel left as units.
    for (index_t j = 0; j < ib; ++j) {
      a(i + j, i + j) = d[i + j];
      a(i + j, i + j + 1) = e[i + j];
    }
    i += ib;
  }

  // Unblocked finish on the self-contained trailing block.
  {
    auto trail = a.block(i, i, n - i, n - i);
    gebd2(trail, d.sub(i, n - i),
          (i < n - 1) ? e.sub(i, n - i - 1) : VectorView<double>(), tauq.sub(i, n - i),
          (i < n - 1) ? taup.sub(i, n - i - 1) : VectorView<double>());
  }
}

Matrix<double> bidiagonal_from(VectorView<const double> d, VectorView<const double> e) {
  const index_t n = d.size();
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0), "bidiagonal_from: e too short");
  Matrix<double> b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b(i, i) = d[i];
    if (i + 1 < n) b(i, i + 1) = e[i];
  }
  return b;
}

bool is_upper_bidiagonal(MatrixView<const double> b, double tol) {
  for (index_t j = 0; j < b.cols(); ++j) {
    for (index_t i = 0; i < b.rows(); ++i) {
      if (i == j || j == i + 1) continue;
      if (std::abs(b(i, j)) > tol) return false;
    }
  }
  return true;
}

namespace {

/// Materialize the QR-geometry reflector block for columns [s, s+ib):
/// column j has its unit on the diagonal row s+j and the tail below.
Matrix<double> materialize_v_qr(MatrixView<const double> a, index_t s, index_t ib) {
  const index_t n = a.rows();
  Matrix<double> v(n - s, ib);
  for (index_t j = 0; j < ib; ++j) {
    v(j, j) = 1.0;
    for (index_t r = j + 1; r < n - s; ++r) v(r, j) = a(s + r, s + j);
  }
  return v;
}

/// Materialize the P-side reflector block for rows [s, s+ib): reflector
/// s+j acts on columns ≥ s+j+1, its vector stored in row s+j right of the
/// superdiagonal. Returned columnwise (the stored row becomes a column).
Matrix<double> materialize_u_rows(MatrixView<const double> a, index_t s, index_t ib) {
  const index_t n = a.rows();
  Matrix<double> v(n - s - 1, ib);
  for (index_t j = 0; j < ib; ++j) {
    v(j, j) = 1.0;
    for (index_t r = j + 1; r < n - s - 1; ++r) v(r, j) = a(s + j, s + 1 + r);
  }
  return v;
}

}  // namespace

Matrix<double> orgbr_q(MatrixView<const double> a_factored, VectorView<const double> tauq,
                       index_t nb) {
  const index_t n = a_factored.rows();
  FTH_CHECK(a_factored.cols() == n, "orgbr_q: matrix must be square");
  FTH_CHECK(tauq.size() >= n, "orgbr_q: tauq too short");
  Matrix<double> q(n, n);
  set_identity(q.view());
  if (n == 0) return q;

  Matrix<double> t(nb, nb);
  Matrix<double> work(n, nb);
  index_t s = ((n - 1) / nb) * nb;
  for (;;) {
    const index_t ib = std::min(nb, n - s);
    Matrix<double> v = materialize_v_qr(a_factored, s, ib);
    larft(Direction::Forward, StoreV::Columnwise, v.cview(), tauq.sub(s, ib), t.view());
    larfb(Side::Left, Trans::No, Direction::Forward, StoreV::Columnwise, v.cview(),
          t.cview(), q.block(s, s, n - s, n - s), work.view());
    if (s == 0) break;
    s -= nb;
  }
  return q;
}

Matrix<double> orgbr_p(MatrixView<const double> a_factored, VectorView<const double> taup,
                       index_t nb) {
  const index_t n = a_factored.rows();
  FTH_CHECK(a_factored.cols() == n, "orgbr_p: matrix must be square");
  FTH_CHECK(taup.size() >= std::max<index_t>(n - 1, 0), "orgbr_p: taup too short");
  Matrix<double> p(n, n);
  set_identity(p.view());
  if (n <= 2) {
    // n == 2: the single right reflector has an empty tail (taup = 0).
    return p;
  }

  const index_t k = n - 2;  // non-trivial right reflectors
  Matrix<double> t(nb, nb);
  Matrix<double> work(n, nb);
  index_t s = ((k - 1) / nb) * nb;
  for (;;) {
    const index_t ib = std::min(nb, k - s);
    Matrix<double> v = materialize_u_rows(a_factored, s, ib);
    larft(Direction::Forward, StoreV::Columnwise, v.cview(), taup.sub(s, ib), t.view());
    larfb(Side::Left, Trans::No, Direction::Forward, StoreV::Columnwise, v.cview(),
          t.cview(), p.block(s + 1, s + 1, n - s - 1, n - s - 1), work.view());
    if (s == 0) break;
    s -= nb;
  }
  return p;
}

}  // namespace fth::lapack

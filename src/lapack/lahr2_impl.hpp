// Shared implementation of the lahr2 panel loop (internal header).
//
// The panel reduction is identical for the host algorithm and the hybrid
// algorithm except for one operation: the large matrix-vector product
// Y(k+1:n, j) = A(k+1:n, cj+1:n)·v, which reads the trailing matrix. On the
// host path that data is in `a`; on the hybrid path it lives in device
// memory and the product runs as a device kernel. The provider functor
// abstracts exactly that one step, so the delicate column-update logic
// exists once.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/matrix.hpp"
#include "lapack/reflectors.hpp"

namespace fth::lapack::detail {

/// Runs the lahr2 column loop on panel columns [k, k+nb) of `a`.
///
/// `big_gemv(j, vj, y_col)` must compute y_col = A(k+1:n, k+j+1:n)·vj
/// against the start-of-iteration trailing matrix, where vj is the
/// reflector vector (unit element included) and y_col has length n−k−1.
/// Only panel columns of `a` are read or written here, so `a`'s trailing
/// columns may be stale on the hybrid path.
template <class BigGemv>
void lahr2_panel(MatrixView<double> a, index_t k, index_t nb, MatrixView<double> t,
                 MatrixView<double> y, VectorView<double> tau, BigGemv&& big_gemv) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "lahr2: matrix must be square");
  FTH_CHECK(k >= 0 && nb >= 1 && k + nb < n, "lahr2: panel out of range");
  FTH_CHECK(t.rows() >= nb && t.cols() >= nb, "lahr2: T too small");
  FTH_CHECK(y.rows() >= n && y.cols() >= nb, "lahr2: Y too small");
  FTH_CHECK(tau.size() >= nb, "lahr2: tau too short");

  std::vector<double> w_buf(static_cast<std::size_t>(nb));
  double ei = 0.0;

  for (index_t j = 0; j < nb; ++j) {
    const index_t cj = k + j;
    const index_t rows = n - k - 1;
    if (j > 0) {
      // Right update of this column from the previous reflectors:
      // b −= Y(k+1:n, 0:j)·(V-row for this column)ᵀ, the row being A(cj, k:cj).
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(y.block(k + 1, 0, rows, j)),
                 VectorView<const double>(a.row(cj).sub(k, j)), 1.0,
                 a.block(k + 1, cj, rows, 1).col(0));
      // Left update: b := (I − V·Tᵀ·Vᵀ)·b.
      VectorView<double> w(w_buf.data(), j);
      auto b1 = a.block(k + 1, cj, j, 1).col(0);
      auto b2 = a.block(k + j + 1, cj, n - k - j - 1, 1).col(0);
      auto v1 = a.block(k + 1, k, j, j);
      auto v2 = a.block(k + j + 1, k, n - k - j - 1, j);
      blas::copy(VectorView<const double>(b1), w);
      blas::trmv(Uplo::Lower, Trans::Yes, Diag::Unit, MatrixView<const double>(v1), w);
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(v2), VectorView<const double>(b2),
                 1.0, w);
      blas::trmv(Uplo::Upper, Trans::Yes, Diag::NonUnit,
                 MatrixView<const double>(t.block(0, 0, j, j)), w);
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(v2), VectorView<const double>(w),
                 1.0, b2);
      blas::trmv(Uplo::Lower, Trans::No, Diag::Unit, MatrixView<const double>(v1), w);
      blas::axpy(-1.0, VectorView<const double>(w), b1);
      a(cj, cj - 1) = ei;
    }

    // Generate the elementary reflector for column cj.
    double alpha = a(k + j + 1, cj);
    auto x = (k + j + 2 < n) ? a.col(cj).sub(k + j + 2, n - k - j - 2) : VectorView<double>();
    larfg(alpha, x, tau[j]);
    ei = alpha;
    a(k + j + 1, cj) = 1.0;

    // Y(k+1:n, j) := tau·(A_trail·v − Y(:,0:j)·(V2ᵀ·v)).
    const index_t vlen = n - k - j - 1;
    auto vj = a.block(k + j + 1, cj, vlen, 1).col(0);
    VectorView<const double> vjc(vj.data(), vlen, 1);
    big_gemv(j, vjc, y.block(k + 1, j, rows, 1).col(0));
    if (j > 0) {
      blas::gemv(Trans::Yes, 1.0, MatrixView<const double>(a.block(k + j + 1, k, vlen, j)),
                 vjc, 0.0, t.block(0, j, j, 1).col(0));
      blas::gemv(Trans::No, -1.0, MatrixView<const double>(y.block(k + 1, 0, rows, j)),
                 VectorView<const double>(t.block(0, j, j, 1).col(0)), 1.0,
                 y.block(k + 1, j, rows, 1).col(0));
    }
    blas::scal(tau[j], y.block(k + 1, j, rows, 1).col(0));

    // T(0:j, j) := −tau·T(0:j,0:j)·(V2ᵀ·v);  T(j,j) := tau.
    if (j > 0) {
      blas::scal(-tau[j], t.block(0, j, j, 1).col(0));
      blas::trmv(Uplo::Upper, Trans::No, Diag::NonUnit,
                 MatrixView<const double>(t.block(0, 0, j, j)), t.block(0, j, j, 1).col(0));
    }
    t(j, j) = tau[j];
  }
  a(k + nb, k + nb - 1) = ei;
}

}  // namespace fth::lapack::detail

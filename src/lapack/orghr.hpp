// Generate the orthogonal factor Q of a Hessenberg reduction (dorghr).
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Form the n×n orthogonal matrix Q = H(0)·H(1)···H(n−2) from the
/// reflectors stored below the first subdiagonal of a gehrd-factored
/// matrix and the scalars `tau`. Blocked backward accumulation.
Matrix<double> orghr(MatrixView<const double> a_factored, VectorView<const double> tau,
                     index_t nb = 32);

/// Materialize the reflector block V for panel columns [k, k+nb) of a
/// factored matrix into a clean (n−k−1)×nb unit-lower-trapezoidal matrix
/// (explicit unit diagonal, explicit zeros above it). Shared by orghr, the
/// hybrid driver, and the FT driver (which checksums V).
Matrix<double> materialize_v(MatrixView<const double> a_factored, index_t k, index_t nb);

/// materialize_v into a caller-owned (n−k−1)×nb view — every entry is
/// written (explicit zeros above the unit diagonal), so a loop-hoisted
/// buffer can be refilled in place. The hybrid drivers use this to keep
/// the V staging buffer alive across an async h2d that is only retired
/// by the next iteration's synchronous panel fetch.
void materialize_v_into(MatrixView<const double> a_factored, index_t k, index_t nb,
                        MatrixView<double> v);

}  // namespace fth::lapack

// Generate the orthogonal factor Q of a Hessenberg reduction (dorghr).
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Form the n×n orthogonal matrix Q = H(0)·H(1)···H(n−2) from the
/// reflectors stored below the first subdiagonal of a gehrd-factored
/// matrix and the scalars `tau`. Blocked backward accumulation.
Matrix<double> orghr(MatrixView<const double> a_factored, VectorView<const double> tau,
                     index_t nb = 32);

/// Materialize the reflector block V for panel columns [k, k+nb) of a
/// factored matrix into a clean (n−k−1)×nb unit-lower-trapezoidal matrix
/// (explicit unit diagonal, explicit zeros above it). Shared by orghr, the
/// hybrid driver, and the FT driver (which checksums V).
Matrix<double> materialize_v(MatrixView<const double> a_factored, index_t k, index_t nb);

}  // namespace fth::lapack

// Symmetric tridiagonal reduction (LAPACK sytd2 / latrd / sytrd, lower).
//
// T = QᵀAQ with T symmetric tridiagonal — the second two-sided
// factorization of the family the paper targets ("we plan to provide soft
// error resilience for the rest of the hybrid two-sided factorizations").
// Only the lower triangle of A is referenced and overwritten: on exit the
// diagonal holds d, the first subdiagonal holds e, and the Householder
// vectors live below, with the same storage geometry as gehrd — so
// lapack::orghr forms this Q too.
#pragma once

#include "la/matrix.hpp"

namespace fth::lapack {

/// Unblocked reduction (LAPACK dsytd2, lower). `d` has length n, `e` and
/// `tau` length max(n−1, 0).
void sytd2(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tau);

/// Panel reduction (LAPACK dlatrd, lower) on columns [k, k+nb): produces
/// the W matrix of the deferred rank-2k update (global rows used), the
/// off-diagonals `e` and scalars `tau` for the panel. The subdiagonal
/// "unit" entries are left set to 1; the caller restores e after the
/// trailing update (exactly LAPACK's contract).
void latrd(MatrixView<double> a, index_t k, index_t nb, VectorView<double> e,
           VectorView<double> tau, MatrixView<double> w);

struct SytrdOptions {
  index_t nb = 32;  ///< panel width
  index_t nx = 64;  ///< crossover to the unblocked code
};

/// Blocked reduction (LAPACK dsytrd, lower).
void sytrd(MatrixView<double> a, VectorView<double> d, VectorView<double> e,
           VectorView<double> tau, const SytrdOptions& opt = {});

/// Build the dense symmetric tridiagonal T from d and e.
Matrix<double> tridiagonal_from(VectorView<const double> d, VectorView<const double> e);

/// True if every element outside the tridiagonal band is ≤ tol.
bool is_tridiagonal(MatrixView<const double> t, double tol = 0.0);

}  // namespace fth::lapack

// Error handling: precondition checks that throw, and debug-only asserts.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fth {

/// Thrown when a routine's documented precondition is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails (a library bug, not user error).
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when fault recovery is impossible (e.g. rectangular error pattern).
class recovery_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": precondition `" << expr << "` violated";
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const std::string& msg,
                                        const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": internal invariant `" << expr << "` failed";
  if (!msg.empty()) os << " — " << msg;
  throw internal_error(os.str());
}
}  // namespace detail

}  // namespace fth

/// Validate a caller-facing precondition; throws fth::precondition_error.
#define FTH_CHECK(expr, msg)                                                      \
  do {                                                                            \
    if (!(expr)) ::fth::detail::throw_precondition(#expr, (msg),                  \
                                                   std::source_location::current()); \
  } while (false)

/// Validate an internal invariant; throws fth::internal_error.
#define FTH_ASSERT(expr, msg)                                                 \
  do {                                                                        \
    if (!(expr)) ::fth::detail::throw_internal(#expr, (msg),                  \
                                               std::source_location::current()); \
  } while (false)

// Error handling: precondition checks that throw, and debug-only asserts.
#pragma once

#include <cstdint>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fth::obs {
// Defined in obs/trace.cpp; declared here (identically to obs/trace.hpp) so
// recovery_error can trigger a flight-recorder dump without common/ pulling
// in the obs headers. No-op returning "" when the recorder is inactive.
std::string flight_dump(const char* reason) noexcept;
}  // namespace fth::obs

namespace fth {

/// Thrown when a routine's documented precondition is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails (a library bug, not user error).
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when fault recovery is impossible (e.g. rectangular error pattern).
/// Carries the structured context of the abandoned recovery so campaigns can
/// aggregate outcomes without parsing the message: the iteration boundary
/// that was given up on, the number of recovery attempts spent, and the
/// detection gap/threshold pair observed on the last attempt. Fields are
/// negative/zero when the throw site had no iteration context (e.g. a bare
/// locate() failure outside a driver).
class recovery_error : public std::runtime_error {
 public:
  explicit recovery_error(const std::string& msg) : std::runtime_error(msg) {
    obs::flight_dump("recovery_error");
  }
  recovery_error(const std::string& msg, std::int64_t boundary, int attempts, double gap,
                 double threshold)
      : std::runtime_error(msg),
        boundary_(boundary),
        attempts_(attempts),
        gap_(gap),
        threshold_(threshold) {
    obs::flight_dump("recovery_error");
  }

  [[nodiscard]] std::int64_t boundary() const noexcept { return boundary_; }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }
  [[nodiscard]] double gap() const noexcept { return gap_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  std::int64_t boundary_ = -1;
  int attempts_ = 0;
  double gap_ = 0.0;
  double threshold_ = 0.0;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": precondition `" << expr << "` violated";
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const std::string& msg,
                                        const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": internal invariant `" << expr << "` failed";
  if (!msg.empty()) os << " — " << msg;
  throw internal_error(os.str());
}
}  // namespace detail

}  // namespace fth

/// Validate a caller-facing precondition; throws fth::precondition_error.
#define FTH_CHECK(expr, msg)                                                      \
  do {                                                                            \
    if (!(expr)) ::fth::detail::throw_precondition(#expr, (msg),                  \
                                                   std::source_location::current()); \
  } while (false)

/// Validate an internal invariant; throws fth::internal_error.
#define FTH_ASSERT(expr, msg)                                                 \
  do {                                                                        \
    if (!(expr)) ::fth::detail::throw_internal(#expr, (msg),                  \
                                               std::source_location::current()); \
  } while (false)

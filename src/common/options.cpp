#include "common/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace fth {

Options::Options(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::string value;
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      kv_.emplace_back(std::move(key), std::move(value));
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> Options::find(const std::string& name) const {
  for (const auto& [k, v] : kv_)
    if (k == name) return v;
  return std::nullopt;
}

bool Options::has(const std::string& name) const { return find(name).has_value(); }

std::string Options::get(const std::string& name, const std::string& fallback) const {
  const auto v = find(name);
  return v && !v->empty() ? *v : fallback;
}

long Options::get_long(const std::string& name, long fallback) const {
  const auto v = find(name);
  return v && !v->empty() ? std::stol(*v) : fallback;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto v = find(name);
  return v && !v->empty() ? std::stod(*v) : fallback;
}

std::vector<index_t> Options::get_sizes(const std::string& name,
                                        std::vector<index_t> fallback) const {
  const auto v = find(name);
  if (!v || v->empty()) return fallback;
  std::vector<index_t> out;
  std::size_t pos = 0;
  while (pos < v->size()) {
    std::size_t next = v->find(',', pos);
    if (next == std::string::npos) next = v->size();
    const std::string tok = v->substr(pos, next - pos);
    if (!tok.empty()) out.push_back(static_cast<index_t>(std::stoll(tok)));
    pos = next + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty size list for --" + name);
  return out;
}

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace fth

// Global floating-point-operation accounting.
//
// The Section V analysis of the paper bounds the resilience overhead by
// counting extra FLOPs; bench_overhead_model validates that bound against
// these counters. Counting happens at kernel granularity (one atomic add
// per BLAS call), so the instrumentation itself is free at scale.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace fth::flops {

namespace detail {
inline std::atomic<std::uint64_t> g_count{0};
inline std::atomic<bool> g_enabled{false};
// Per-thread shadow of g_count, sampled by the profiler at span boundaries
// so FLOPs are attributed to the phase (and thread) that executed them —
// the global total alone cannot separate concurrent host and device work.
inline thread_local std::uint64_t t_count = 0;
}  // namespace detail

/// Enable or disable counting. Disabled by default (zero overhead path
/// still performs one relaxed load per kernel).
inline void enable(bool on) noexcept { detail::g_enabled.store(on, std::memory_order_relaxed); }

/// Whether counting is currently enabled.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Record `n` floating point operations (no-op when disabled).
inline void add(std::uint64_t n) noexcept {
  if (enabled()) {
    detail::g_count.fetch_add(n, std::memory_order_relaxed);
    detail::t_count += n;
  }
}

/// Current counter value.
inline std::uint64_t count() noexcept { return detail::g_count.load(std::memory_order_relaxed); }

/// FLOPs recorded by the calling thread (monotonic, never reset — consumers
/// take deltas). Plain thread-local, so it is cheaper than the global add.
inline std::uint64_t thread_count() noexcept { return detail::t_count; }

/// Reset the counter to zero.
inline void reset() noexcept { detail::g_count.store(0, std::memory_order_relaxed); }

/// RAII scope that enables counting and captures the delta on destruction.
class Scope {
 public:
  Scope() : start_(count()) { was_enabled_ = enabled(); enable(true); }
  ~Scope() { enable(was_enabled_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// FLOPs recorded since this scope began.
  [[nodiscard]] std::uint64_t delta() const noexcept { return count() - start_; }

 private:
  std::uint64_t start_;
  bool was_enabled_;
};

// --- Standard FLOP models (LAWN 41 conventions) -----------------------------

/// FLOPs of C = alpha*op(A)*op(B) + beta*C with op(A) m×k.
constexpr std::uint64_t gemm(index_t m, index_t n, index_t k) noexcept {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

/// FLOPs of y = alpha*op(A)*x + beta*y with A m×n.
constexpr std::uint64_t gemv(index_t m, index_t n) noexcept {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n);
}

/// FLOPs of a Hessenberg reduction of an n×n matrix (~10/3 n^3).
constexpr double gehrd(index_t n) noexcept {
  const double dn = static_cast<double>(n);
  return 10.0 / 3.0 * dn * dn * dn;
}

}  // namespace fth::flops

// Fundamental scalar/index types and BLAS-style enums shared by all layers.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace fth {

/// Index type used for all matrix dimensions and loops. Signed, so that
/// reverse loops and differences are safe (C++ Core Guidelines ES.100-107).
using index_t = std::int64_t;

/// Memory space a view's storage lives in. Views are tagged with their
/// space (see la/matrix.hpp); device-tagged views cannot be dereferenced
/// by host code without going through an explicit, checked gate, which is
/// what turns the "device memory is only touched inside stream tasks or
/// transfer routines" convention into a type error (DESIGN.md §10).
enum class MemSpace : unsigned char { Host, Device };

/// Operation applied to a matrix operand of a BLAS call.
enum class Trans : char { No = 'N', Yes = 'T' };

/// Which triangle of a matrix a triangular routine references.
enum class Uplo : char { Upper = 'U', Lower = 'L' };

/// Whether the referenced triangle has an implicit unit diagonal.
enum class Diag : char { NonUnit = 'N', Unit = 'U' };

/// Side from which a triangular/block-reflector operand is applied.
enum class Side : char { Left = 'L', Right = 'R' };

/// Storage direction of the elementary reflectors in a block reflector.
enum class Direction : char { Forward = 'F', Backward = 'B' };

/// How the reflector vectors are stored in a block reflector.
enum class StoreV : char { Columnwise = 'C', Rowwise = 'R' };

constexpr std::string_view to_string(Trans t) { return t == Trans::No ? "N" : "T"; }
constexpr std::string_view to_string(Uplo u) { return u == Uplo::Upper ? "Upper" : "Lower"; }
constexpr std::string_view to_string(Side s) { return s == Side::Left ? "Left" : "Right"; }

/// Machine epsilon for the working precision.
template <class T>
constexpr T eps() noexcept {
  return std::numeric_limits<T>::epsilon();
}

}  // namespace fth

// Out-of-line anchor for the flops module (all logic is in the header; this
// translation unit exists so the module owns a home in the library archive
// and future non-inline additions have a place to live).
#include "common/flops.hpp"

namespace fth::flops {
// Intentionally empty.
}  // namespace fth::flops

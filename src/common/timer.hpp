// Wall-clock timing utilities for benchmarks and overhead accounting.
#pragma once

#include <chrono>

namespace fth {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time over multiple start/stop intervals (e.g. per-phase cost).
class Accumulator {
 public:
  /// Begin an interval. A start() while an interval is already running
  /// banks that interval first (as if stop() had been called), so no time
  /// is silently discarded.
  void start() noexcept {
    if (running_) { total_ += timer_.seconds(); ++laps_; }
    timer_.reset();
    running_ = true;
  }
  void stop() noexcept {
    if (running_) { total_ += timer_.seconds(); ++laps_; running_ = false; }
  }
  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] long laps() const noexcept { return laps_; }
  void clear() noexcept { total_ = 0.0; laps_ = 0; running_ = false; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  long laps_ = 0;
  bool running_ = false;
};

}  // namespace fth

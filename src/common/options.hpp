// Minimal command-line / environment option parsing for benches & examples.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fth {

/// Parsed `--key value` / `--flag` style options plus positional arguments.
///
/// Shared by every bench binary so that all experiments accept the same
/// vocabulary (--sizes, --nb, --trials, --seed, --paper, ...).
class Options {
 public:
  Options(int argc, char** argv);

  /// True if `--name` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name value`, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Comma-separated integer list, e.g. `--sizes 128,256,512`.
  [[nodiscard]] std::vector<index_t> get_sizes(const std::string& name,
                                               std::vector<index_t> fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> find(const std::string& name) const;

  std::string program_;
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> positional_;
};

/// Environment variable lookup with fallback.
std::string env_or(const char* name, const std::string& fallback);

}  // namespace fth

// Deterministic, seedable pseudo-random number generation (xoshiro256++).
//
// Benchmarks and fault-injection campaigns must be reproducible across
// platforms, so we avoid std::mt19937's distribution non-portability and
// implement both the generator and the distributions ourselves.
#pragma once

#include <cstdint>

namespace fth {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed using splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Rejection-sampled to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept {
    if (have_spare_) { have_spare_ = false; return spare_; }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_neg2log(s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_neg2log(double s) noexcept;

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

inline double Rng::sqrt_neg2log(double s) noexcept {
  // sqrt(-2 ln(s) / s) — kept out-of-line-ish to avoid <cmath> in the hot header.
  return __builtin_sqrt(-2.0 * __builtin_log(s) / s);
}

}  // namespace fth

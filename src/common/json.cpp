#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fth::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw parse_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) fail("bad number");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    return Value(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw parse_error("json: cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return parse(os.str());
}

}  // namespace fth::json

// Minimal JSON reader for the repo's own machine-readable artifacts
// (bench_*.json structured reports, Chrome trace files, flight-recorder
// dumps). Recursive descent over the full value grammar, no dependencies;
// numbers are held as double (every number we emit fits), objects keep
// insertion order so diffs stay stable. This is a *reader* for files this
// library writes plus tooling inputs — not a general-purpose validator.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fth::json {

/// Thrown on malformed input, with a byte offset in the message.
class parse_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object (key order as written in the file).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Value() = default;
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double d) : type_(Type::Number), num_(d) {}
  explicit Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  explicit Value(Array a) : type_(Type::Array), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o) : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool() const { return require(Type::Bool), bool_; }
  [[nodiscard]] double as_number() const { return require(Type::Number), num_; }
  [[nodiscard]] const std::string& as_string() const { return require(Type::String), str_; }
  [[nodiscard]] const Array& as_array() const { return require(Type::Array), *arr_; }
  [[nodiscard]] const Object& as_object() const { return require(Type::Object), *obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : *obj_)
      if (k == key) return &v;
    return nullptr;
  }
  /// Object member access; throws when absent.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Value* v = find(key);
    if (v == nullptr) throw parse_error("json: missing key '" + key + "'");
    return *v;
  }

 private:
  void require(Type t) const {
    if (type_ != t) throw parse_error("json: wrong value type accessed");
  }

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] Value parse(const std::string& text);

/// Parse the file at `path`; throws parse_error (also on unreadable file).
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace fth::json

#include "fault/campaign.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ft/ft_gebrd.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"

namespace fth::fault {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Gehrd: return "ft_gehrd";
    case Algorithm::Sytrd: return "ft_sytrd";
    case Algorithm::Gebrd: return "ft_gebrd";
  }
  return "?";
}

namespace {

/// Uniform adapter: run one FT factorization, return the factored matrix.
Matrix<double> run_algorithm(hybrid::Device& dev, Algorithm alg, const Matrix<double>& a0,
                             index_t nb, Injector* inj, ft::FtReport* rep) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  std::vector<double> tau(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  std::vector<double> tauq(static_cast<std::size_t>(n));
  switch (alg) {
    case Algorithm::Gehrd:
      ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), {.nb = nb}, inj,
                   rep);
      break;
    case Algorithm::Sytrd:
      ft::ft_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
                   VectorView<double>(e.data(), n - 1), VectorView<double>(tau.data(), n - 1),
                   {.nb = nb}, inj, rep);
      break;
    case Algorithm::Gebrd:
      ft::ft_gebrd(dev, a.view(), VectorView<double>(d.data(), n),
                   VectorView<double>(e.data(), n - 1), VectorView<double>(tauq.data(), n),
                   VectorView<double>(tau.data(), n - 1), {.nb = nb}, inj, rep);
      break;
  }
  return a;
}

index_t boundaries_of(Algorithm alg, index_t n, index_t nb) {
  switch (alg) {
    case Algorithm::Gehrd: return ft::ft_total_boundaries(n, nb);
    case Algorithm::Sytrd: return ft::ft_sytrd_boundaries(n, nb);
    case Algorithm::Gebrd: return ft::ft_gebrd_boundaries(n, nb);
  }
  return 1;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg) {
  FTH_CHECK(cfg.n >= 4, "campaign: matrix too small");
  FTH_CHECK(cfg.trials >= 1 && cfg.faults_per_trial >= 0, "campaign: bad configuration");

  CampaignResult result;
  hybrid::Device dev;
  Rng seeder(cfg.seed);

  for (int trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t mseed = seeder.next();
    const std::uint64_t fseed = seeder.next();
    Matrix<double> a0 = cfg.algorithm == Algorithm::Sytrd
                            ? random_symmetric_matrix(cfg.n, mseed)
                            : random_matrix(cfg.n, cfg.n, mseed);

    // Fault-free reference run.
    ft::FtReport clean_rep;
    Matrix<double> clean = run_algorithm(dev, cfg.algorithm, a0, cfg.nb, nullptr, &clean_rep);

    // Faulty run.
    TrialOutcome out;
    const index_t boundaries = boundaries_of(cfg.algorithm, cfg.n, cfg.nb);
    std::vector<FaultSpec> specs;
    Rng frng(fseed);
    for (int f = 0; f < cfg.faults_per_trial; ++f) {
      FaultSpec spec;
      spec.area = cfg.area;
      spec.boundary = 1 + static_cast<index_t>(frng.below(
                              static_cast<std::uint64_t>(std::max<index_t>(boundaries - 1, 1))));
      // Vary magnitude per fault so simultaneous errors stay distinguishable.
      spec.magnitude = cfg.magnitude * (1.0 + frng.uniform());
      specs.push_back(spec);
    }
    Injector inj(specs, fseed ^ 0x51CA5EULL);

    ft::FtReport rep;
    try {
      Matrix<double> faulty = run_algorithm(dev, cfg.algorithm, a0, cfg.nb, &inj, &rep);
      out.recovered = true;
      out.max_error_vs_clean = max_abs_diff(faulty.cview(), clean.cview());
    } catch (const recovery_error& e) {
      out.failure = e.what();
    }
    out.injected = inj.history();
    out.detections = rep.detections;
    out.corrections = rep.data_corrections + rep.checksum_corrections + rep.q_corrections +
                      rep.final_sweep_corrections;

    if (out.recovered) {
      const double tol = 1e-8 * std::max(1.0, norm_max(a0.cview()));
      out.result_correct = out.max_error_vs_clean <= tol;
      if (out.result_correct) ++result.correct_count;
      ++result.recovered_count;
      result.worst_error_vs_clean =
          std::max(result.worst_error_vs_clean, out.max_error_vs_clean);
    }
    result.trials.push_back(std::move(out));
  }
  return result;
}

}  // namespace fth::fault

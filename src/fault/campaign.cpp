#include "fault/campaign.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ft/ft_gebrd.hpp"
#include "ft/ft_gehrd.hpp"
#include "ft/ft_sytrd.hpp"
#include "ft/pool_gehrd.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lapack/gehrd.hpp"
#include "obs/dag.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace fth::fault {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Gehrd: return "ft_gehrd";
    case Algorithm::Sytrd: return "ft_sytrd";
    case Algorithm::Gebrd: return "ft_gebrd";
  }
  return "?";
}

std::string to_string(SoakClass c) {
  switch (c) {
    case SoakClass::BoundaryDelta: return "boundary-delta";
    case SoakClass::InFlightBitFlip: return "inflight-bitflip";
    case SoakClass::InFlightNaN: return "inflight-nan";
    case SoakClass::InFlightInf: return "inflight-inf";
    case SoakClass::ChecksumStrike: return "checksum-strike";
    case SoakClass::TransferStrike: return "transfer-strike";
    case SoakClass::CheckpointStrike: return "checkpoint-strike";
    case SoakClass::DuringRecovery: return "during-recovery";
  }
  return "?";
}

namespace {

/// Uniform adapter: run one FT factorization, return the factored matrix.
Matrix<double> run_algorithm(hybrid::Device& dev, Algorithm alg, const Matrix<double>& a0,
                             index_t nb, Injector* inj, FaultPlane* plane,
                             ft::FtReport* rep) {
  const index_t n = a0.rows();
  Matrix<double> a(a0.cview());
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  std::vector<double> tau(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)));
  std::vector<double> tauq(static_cast<std::size_t>(n));
  switch (alg) {
    case Algorithm::Gehrd: {
      ft::FtOptions o;
      o.nb = nb;
      o.fault_plane = plane;
      ft::ft_gehrd(dev, a.view(), VectorView<double>(tau.data(), n - 1), o, inj, rep);
      break;
    }
    case Algorithm::Sytrd: {
      ft::FtSytrdOptions o;
      o.nb = nb;
      o.fault_plane = plane;
      ft::ft_sytrd(dev, a.view(), VectorView<double>(d.data(), n),
                   VectorView<double>(e.data(), n - 1), VectorView<double>(tau.data(), n - 1),
                   o, inj, rep);
      break;
    }
    case Algorithm::Gebrd: {
      ft::FtGebrdOptions o;
      o.nb = nb;
      o.fault_plane = plane;
      ft::ft_gebrd(dev, a.view(), VectorView<double>(d.data(), n),
                   VectorView<double>(e.data(), n - 1), VectorView<double>(tauq.data(), n),
                   VectorView<double>(tau.data(), n - 1), o, inj, rep);
      break;
    }
  }
  return a;
}

index_t boundaries_of(Algorithm alg, index_t n, index_t nb) {
  switch (alg) {
    case Algorithm::Gehrd: return ft::ft_total_boundaries(n, nb);
    case Algorithm::Sytrd: return ft::ft_sytrd_boundaries(n, nb);
    case Algorithm::Gebrd: return ft::ft_gebrd_boundaries(n, nb);
  }
  return 1;
}

constexpr SoakClass kDefaultMix[] = {
    SoakClass::InFlightBitFlip, SoakClass::InFlightNaN,    SoakClass::InFlightInf,
    SoakClass::ChecksumStrike,  SoakClass::TransferStrike, SoakClass::CheckpointStrike,
    SoakClass::DuringRecovery,  SoakClass::BoundaryDelta,
};

/// Everything a soak trial arms: in-flight faults plus (for the paired
/// classes) boundary faults that force the struck state to be consumed.
struct SoakSetup {
  std::vector<InFlightFault> armed;
  std::vector<FaultSpec> boundary;
};

SoakSetup plan_soak(SoakClass cls, const CampaignConfig& cfg, const TriggerCounts& counts,
                    double threshold, index_t boundaries, Rng& rng) {
  SoakSetup s;
  // Bit flips must perturb the struck element past the detection threshold,
  // or the campaign's 100%-detection assertion would be defeated by a
  // low-mantissa flip on a near-zero element.
  const double min_impact = std::max(1e-6, 100.0 * threshold);
  // Draw strike times from the leading 3/4 of the clean run's task count:
  // the tail covers the final phase, where a strike can land after the last
  // full comparison has already read the data.
  const auto draw_task = [&]() -> std::uint64_t {
    return 1 + rng.below(std::max<std::uint64_t>(1, counts.tasks * 3 / 4));
  };
  // Paired boundary faults are pinned to the lower-trailing area: they exist
  // to force an online detection + rollback (consuming the struck checkpoint
  // or opening the recovery bracket), and only trailing faults guarantee one
  // — a Q-panel or finished-region fault is corrected at the end instead.
  const auto boundary_fault = [&](index_t b, Area area) {
    FaultSpec spec;
    spec.area = area;
    spec.boundary = b;
    // Vary magnitude per fault so simultaneous errors stay distinguishable.
    spec.magnitude = cfg.magnitude * (1.0 + rng.uniform());
    return spec;
  };
  const auto random_boundary = [&]() -> index_t {
    return 1 + static_cast<index_t>(rng.below(
                   static_cast<std::uint64_t>(std::max<index_t>(boundaries - 1, 1))));
  };
  const int k = std::max(1, cfg.faults_per_trial);

  switch (cls) {
    case SoakClass::BoundaryDelta:
      for (int f = 0; f < k; ++f)
        s.boundary.push_back(boundary_fault(random_boundary(), cfg.area));
      break;
    case SoakClass::InFlightBitFlip:
      // Multi-fault soak: faults_per_trial independent flips, kinds rotated.
      for (int f = 0; f < k; ++f) {
        constexpr FaultKind kinds[] = {FaultKind::MantissaFlip, FaultKind::ExponentFlip,
                                       FaultKind::SignFlip};
        InFlightFault a;
        a.when = When::StreamTask;
        a.surface = Surface::TrailingMatrix;
        a.kind = kinds[f % 3];
        a.countdown = draw_task();
        a.min_impact = min_impact;
        s.armed.push_back(a);
      }
      break;
    case SoakClass::InFlightNaN:
    case SoakClass::InFlightInf: {
      // One non-finite strike: independent NaNs in unrelated rows AND
      // columns would exceed the codes' reconstruction capability by
      // design (that failure mode is the escalation tests' job).
      InFlightFault a;
      a.when = When::StreamTask;
      a.surface = Surface::TrailingMatrix;
      a.kind = cls == SoakClass::InFlightNaN ? FaultKind::QuietNaN : FaultKind::Infinity;
      a.countdown = draw_task();
      s.armed.push_back(a);
      break;
    }
    case SoakClass::ChecksumStrike: {
      InFlightFault a;
      a.when = When::StreamTask;
      a.surface = rng.below(2) == 0 ? Surface::ChecksumCol : Surface::ChecksumRow;
      a.kind = FaultKind::ExponentFlip;
      a.countdown = draw_task();
      a.min_impact = min_impact;
      s.armed.push_back(a);
      break;
    }
    case SoakClass::TransferStrike: {
      // Eligible transfers land only inside the protected domain (checksum
      // re-encode h2d, checkpoint-save d2h); which directions exist depends
      // on the driver, so consult the clean run's counts.
      InFlightFault a;
      a.kind = FaultKind::ExponentFlip;
      a.min_impact = min_impact;
      if (counts.d2h > 0 && (counts.h2d == 0 || rng.below(2) == 0)) {
        a.when = When::TransferD2H;
        a.countdown = 1 + rng.below(counts.d2h);
      } else if (counts.h2d > 0) {
        a.when = When::TransferH2D;
        a.countdown = 1 + rng.below(counts.h2d);
      } else {
        a.when = When::StreamTask;  // driver ships nothing eligible: fall back
        a.surface = Surface::ChecksumCol;
        a.countdown = draw_task();
      }
      s.armed.push_back(a);
      break;
    }
    case SoakClass::CheckpointStrike: {
      // The checkpoint is dead storage unless a rollback reads it, so pair
      // the strike with a boundary fault at every boundary: whichever
      // iteration the strike lands in, that iteration's recovery consumes
      // the corrupted buffer and must re-derive it.
      InFlightFault a;
      a.when = When::StreamTask;
      a.surface = Surface::Checkpoint;
      a.kind = FaultKind::ExponentFlip;
      a.countdown = draw_task();
      a.min_impact = min_impact;
      s.armed.push_back(a);
      for (index_t b = 1; b <= std::max<index_t>(boundaries - 1, 1); ++b)
        s.boundary.push_back(boundary_fault(b, Area::LowerTrailing));
      break;
    }
    case SoakClass::DuringRecovery: {
      // A boundary fault forces a recovery; the armed fault only counts
      // triggers inside the recovery bracket, so it strikes mid-redo and a
      // second detect/rollback round must absorb it.
      s.boundary.push_back(boundary_fault(random_boundary(), Area::LowerTrailing));
      InFlightFault a;
      a.when = When::DuringRecovery;
      a.surface = Surface::TrailingMatrix;
      a.kind = rng.below(2) == 0 ? FaultKind::ExponentFlip : FaultKind::QuietNaN;
      a.countdown = 1 + rng.below(8);
      a.min_impact = min_impact;
      s.armed.push_back(a);
      break;
    }
  }
  return s;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg) {
  FTH_CHECK(cfg.n >= 4, "campaign: matrix too small");
  FTH_CHECK(cfg.trials >= 1 && cfg.faults_per_trial >= 0, "campaign: bad configuration");

  CampaignResult result;
  hybrid::Device dev;
  Rng seeder(cfg.seed);
  const std::vector<SoakClass> mix =
      !cfg.classes.empty()
          ? cfg.classes
          : std::vector<SoakClass>(std::begin(kDefaultMix), std::end(kDefaultMix));

  for (int trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t mseed = seeder.next();
    const std::uint64_t fseed = seeder.next();
    Matrix<double> a0 = cfg.algorithm == Algorithm::Sytrd
                            ? random_symmetric_matrix(cfg.n, mseed)
                            : random_matrix(cfg.n, cfg.n, mseed);

    // Fault-free reference run. In soak mode a plane with nothing armed
    // rides along as a pure trigger counter, giving the eligible-trigger
    // totals the countdown draws are scaled by.
    ft::FtReport clean_rep;
    FaultPlane counter(fseed);
    Matrix<double> clean = run_algorithm(dev, cfg.algorithm, a0, cfg.nb, nullptr,
                                         cfg.in_flight ? &counter : nullptr, &clean_rep);

    // Faulty run.
    TrialOutcome out;
    const index_t boundaries = boundaries_of(cfg.algorithm, cfg.n, cfg.nb);
    Rng frng(fseed);
    std::vector<FaultSpec> specs;
    FaultPlane plane(fseed ^ 0xF1DE0ULL);
    bool use_plane = false;
    if (cfg.in_flight) {
      out.fault_class = mix[static_cast<std::size_t>(trial) % mix.size()];
      const SoakSetup setup = plan_soak(out.fault_class, cfg, counter.trigger_counts(),
                                        clean_rep.threshold, boundaries, frng);
      specs = setup.boundary;
      for (const auto& a : setup.armed) plane.arm(a);
      use_plane = !setup.armed.empty();
    } else {
      for (int f = 0; f < cfg.faults_per_trial; ++f) {
        FaultSpec spec;
        spec.area = cfg.area;
        spec.boundary =
            1 + static_cast<index_t>(frng.below(
                    static_cast<std::uint64_t>(std::max<index_t>(boundaries - 1, 1))));
        // Vary magnitude per fault so simultaneous errors stay distinguishable.
        spec.magnitude = cfg.magnitude * (1.0 + frng.uniform());
        specs.push_back(spec);
      }
    }
    Injector inj(specs, fseed ^ 0x51CA5EULL);

    ft::FtReport rep;
    const obs::Registry::CounterValues counters_before =
        obs::Registry::global().counter_values();
    // Every faulty run is its own journal run, so a capsule's journal slice
    // holds exactly this trial's records (the clean reference is excluded).
    out.run_id = obs::journal_new_run();
    try {
      Matrix<double> faulty =
          run_algorithm(dev, cfg.algorithm, a0, cfg.nb, specs.empty() ? nullptr : &inj,
                        use_plane ? &plane : nullptr, &rep);
      out.recovered = true;
      out.max_error_vs_clean = max_abs_diff(faulty.cview(), clean.cview());
    } catch (const recovery_error& e) {
      out.failure = e.what();
      if (obs::incident_enabled()) {
        obs::IncidentReport inc;
        inc.trigger = "recovery_error";
        inc.who = to_string(cfg.algorithm);
        inc.run_id = out.run_id;
        inc.boundary = e.boundary();
        inc.outcome.status = "failed";
        inc.outcome.reason = ft::to_string(rep.outcome.reason);
        inc.outcome.detail = e.what();
        inc.outcome.attempts = e.attempts();
        const auto now = obs::Registry::global().counter_values();
        for (const auto& [name, delta] : obs::Registry::counter_delta(now, counters_before))
          inc.metrics_delta.emplace_back(name, delta);
        inc.journal = obs::journal_snapshot(out.run_id);
        if (use_plane) inc.strikes_json = strikes_json(plane);
        inc.flight_json = obs::flight_tail_json(512);
        inc.dag_json = obs::dag::tail_json(128);
        const std::string path = obs::write_incident(inc);
        if (!path.empty()) out.incidents.push_back(path);
      }
    }
    out.metric_deltas =
        obs::Registry::counter_delta(obs::Registry::global().counter_values(), counters_before);
    out.injected = inj.history();
    out.in_flight_fired = plane.fired();
    out.detections = rep.detections;
    out.corrections = rep.data_corrections + rep.checksum_corrections + rep.q_corrections +
                      rep.final_sweep_corrections;
    out.outcome = rep.outcome;
    out.report = rep;
    // "Detected" means any FT mechanism saw the fault: the per-iteration
    // comparison, the checkpoint integrity check, non-finite reconstruction,
    // the final sweep, or the Q/P verification.
    out.detected = rep.detections > 0 || rep.ckpt_rederivations > 0 ||
                   rep.reconstructions > 0 || rep.panel_aborts > 0 ||
                   rep.final_sweep_corrections > 0 || rep.q_corrections > 0;

    if (out.detected) ++result.detected_count;
    if (out.outcome.status == ft::RecoveryStatus::Unrecoverable) ++result.aborted_count;
    if (!use_plane || plane.all_fired()) ++result.fired_count;
    if (out.recovered) {
      const double tol = 1e-8 * std::max(1.0, norm_max(a0.cview()));
      out.result_correct = out.max_error_vs_clean <= tol;
      if (out.result_correct) ++result.correct_count;
      ++result.recovered_count;
      result.worst_error_vs_clean =
          std::max(result.worst_error_vs_clean, out.max_error_vs_clean);
    }
    result.trials.push_back(std::move(out));
  }
  return result;
}

DeviceLossSoakResult run_device_loss_soak(const DeviceLossSoakConfig& cfg) {
  FTH_CHECK(cfg.n >= 4, "device-loss soak: matrix too small");
  FTH_CHECK(cfg.devices >= 2, "device-loss soak: need a redundancy group (D >= 2)");
  FTH_CHECK(cfg.trials >= 1, "device-loss soak: bad configuration");

  DeviceLossSoakResult result;
  Rng seeder(cfg.seed);
  const std::vector<LossKind> mix =
      !cfg.kinds.empty()
          ? cfg.kinds
          : std::vector<LossKind>{LossKind::SilentStall, LossKind::PoisonOutput,
                                  LossKind::HardDeath};

  for (int trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t mseed = seeder.next();
    const std::uint64_t fseed = seeder.next();
    const Matrix<double> a0 = random_matrix(cfg.n, cfg.n, mseed);

    // Fault-free reference factorization (host algorithm, the ground truth
    // every pool geometry already matches in the clean tests).
    Matrix<double> clean(a0.cview());
    std::vector<double> tau_c(static_cast<std::size_t>(cfg.n - 1));
    lapack::gehrd(clean.view(),
                  VectorView<double>(tau_c.data(), static_cast<index_t>(tau_c.size())),
                  {.nb = cfg.nb, .nx = cfg.nb});

    // Clean pool run with an idle plane counting each member's post-encode
    // tasks — the schedule the countdown draw lands inside.
    ft::PoolGehrdOptions opt{.nb = cfg.nb, .nx = cfg.nb, .timeout_ms = cfg.timeout_ms};
    FaultPlane counter(fseed);
    {
      hybrid::DevicePool pool({.devices = cfg.devices});
      Matrix<double> warm(a0.cview());
      std::vector<double> tau(static_cast<std::size_t>(cfg.n - 1));
      ft::PoolGehrdOptions copt = opt;
      copt.plane = &counter;
      ft::pool_gehrd(pool, warm.view(),
                     VectorView<double>(tau.data(), static_cast<index_t>(tau.size())), copt);
    }

    DeviceLossTrial out;
    Rng frng(fseed);
    out.kind = mix[static_cast<std::size_t>(trial) % mix.size()];
    out.device = static_cast<int>(frng.below(static_cast<std::uint64_t>(cfg.devices)));
    // Land strictly inside the member's real schedule: the faulty run
    // tracks the clean one task-for-task until the strike, so any
    // countdown <= 90% of the clean count is guaranteed to fire.
    const std::uint64_t tasks = counter.pool_task_count(out.device);
    const std::uint64_t hi = std::max<std::uint64_t>(1, tasks * 9 / 10);
    out.countdown = 1 + frng.below(hi);

    FaultPlane plane(fseed ^ 0xDEADULL);
    plane.arm_device_loss({.kind = out.kind, .device = out.device, .countdown = out.countdown});

    hybrid::DevicePool pool({.devices = cfg.devices});
    Matrix<double> faulty(a0.cview());
    std::vector<double> tau(static_cast<std::size_t>(cfg.n - 1));
    ft::PoolGehrdOptions fopt = opt;
    fopt.plane = &plane;
    try {
      ft::pool_gehrd(pool, faulty.view(),
                     VectorView<double>(tau.data(), static_cast<index_t>(tau.size())), fopt,
                     &out.report);
      out.recovered = true;
      out.max_error_vs_clean = max_abs_diff(faulty.cview(), clean.cview());
    } catch (const recovery_error& e) {
      out.failure = e.what();
    }
    out.fired = !plane.fired_losses().empty();

    if (out.fired) ++result.fired_count;
    if (out.recovered) {
      ++result.recovered_count;
      // Same bar as the element-fault soak: recovery must leave no
      // fault-shaped error behind, only reassociation roundoff.
      const double tol = 1e-8 * std::max(1.0, norm_max(a0.cview()));
      out.result_correct = out.max_error_vs_clean <= tol;
      if (out.result_correct) ++result.correct_count;
      result.worst_error_vs_clean =
          std::max(result.worst_error_vs_clean, out.max_error_vs_clean);
    }
    result.trials.push_back(std::move(out));
  }
  return result;
}

}  // namespace fth::fault

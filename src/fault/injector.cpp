#include "fault/injector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace fth::fault {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::AddDelta: return "add-delta";
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::SignFlip: return "sign-flip";
    case FaultKind::ExponentFlip: return "exponent-flip";
    case FaultKind::MantissaFlip: return "mantissa-flip";
    case FaultKind::QuietNaN: return "quiet-nan";
    case FaultKind::Infinity: return "infinity";
  }
  return "?";
}

double flip_bit(double x, int bit) {
  FTH_CHECK(bit >= 0 && bit < 64, "flip_bit: bit out of range");
  const auto u = std::bit_cast<std::uint64_t>(x) ^ (std::uint64_t{1} << bit);
  return std::bit_cast<double>(u);
}

double corrupt_value(double x, FaultKind k, int bit, double delta, Rng& rng) {
  switch (k) {
    case FaultKind::AddDelta:
      return x + delta;
    case FaultKind::BitFlip:
      if (bit < 0) bit = static_cast<int>(rng.below(64));
      return flip_bit(x, bit);
    case FaultKind::SignFlip:
      return flip_bit(x, 63);
    case FaultKind::ExponentFlip:
      if (bit < 0 || bit < 52 || bit > 62) bit = 52 + static_cast<int>(rng.below(11));
      return flip_bit(x, bit);
    case FaultKind::MantissaFlip:
      if (bit < 0 || bit > 51) bit = static_cast<int>(rng.below(52));
      return flip_bit(x, bit);
    case FaultKind::QuietNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::Infinity:
      return std::copysign(std::numeric_limits<double>::infinity(),
                           x == 0.0 ? 1.0 : x);
  }
  return x;
}

double PendingFault::apply(double x) const {
  switch (kind) {
    case FaultKind::AddDelta:
      return x + delta;
    case FaultKind::QuietNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::Infinity:
      return std::copysign(std::numeric_limits<double>::infinity(),
                           x == 0.0 ? 1.0 : x);
    default:
      // Flip kinds have their bit resolved by Injector::due().
      return flip_bit(x, bit >= 0 ? bit : 0);
  }
}

Area classify(index_t row, index_t col, index_t i) {
  if (col >= i) return row < i ? Area::UpperTrailing : Area::LowerTrailing;
  return row > col + 1 ? Area::QPanel : Area::FinishedH;
}

std::string to_string(Area a) {
  switch (a) {
    case Area::Any: return "any";
    case Area::UpperTrailing: return "area1(upper-trailing)";
    case Area::LowerTrailing: return "area2(lower-trailing)";
    case Area::QPanel: return "area3(Q-panel)";
    case Area::FinishedH: return "finished-H";
  }
  return "?";
}

std::string to_string(Moment m) {
  switch (m) {
    case Moment::Beginning: return "B";
    case Moment::Middle: return "M";
    case Moment::End: return "E";
  }
  return "?";
}

index_t moment_boundary(Moment m, index_t total_boundaries) {
  FTH_CHECK(total_boundaries >= 1, "moment_boundary: no iterations");
  switch (m) {
    case Moment::Beginning: return 1;
    case Moment::Middle: return std::max<index_t>(1, (total_boundaries + 1) / 2);
    case Moment::End: return total_boundaries;
  }
  return 1;
}

Injector::Injector(std::vector<FaultSpec> specs, std::uint64_t seed) : rng_(seed) {
  armed_.reserve(specs.size());
  for (auto& s : specs) armed_.push_back({s, false});
}

Injector::Injector(const FaultSpec& spec, std::uint64_t seed)
    : Injector(std::vector<FaultSpec>{spec}, seed) {}

std::vector<PendingFault> Injector::due(index_t boundary, index_t total_boundaries, index_t i,
                                        index_t n, double scale) {
  std::vector<PendingFault> out;
  for (auto& a : armed_) {
    if (a.fired) continue;
    const index_t target = a.spec.boundary >= 0
                               ? a.spec.boundary
                               : moment_boundary(a.spec.moment, total_boundaries);
    if (boundary != target) continue;

    PendingFault f;
    f.delta = a.spec.relative ? a.spec.magnitude * scale : a.spec.magnitude;
    f.kind = a.spec.kind;
    switch (a.spec.kind) {
      case FaultKind::BitFlip:
        f.bit = a.spec.bit >= 0 ? a.spec.bit : static_cast<int>(rng_.below(64));
        break;
      case FaultKind::SignFlip:
        f.bit = 63;
        break;
      case FaultKind::ExponentFlip:
        f.bit = (a.spec.bit >= 52 && a.spec.bit <= 62) ? a.spec.bit
                                                       : 52 + static_cast<int>(rng_.below(11));
        break;
      case FaultKind::MantissaFlip:
        f.bit = (a.spec.bit >= 0 && a.spec.bit <= 51) ? a.spec.bit
                                                      : static_cast<int>(rng_.below(52));
        break;
      default:
        break;
    }
    if (a.spec.row >= 0 && a.spec.col >= 0) {
      f.row = a.spec.row;
      f.col = a.spec.col;
      f.area = classify(f.row, f.col, i);
    } else {
      // Draw coordinates uniformly inside the requested area at this
      // boundary. All areas are non-empty once at least one panel is done
      // and at least one trailing column remains.
      switch (a.spec.area) {
        case Area::UpperTrailing:
          FTH_CHECK(i >= 1 && i < n, "area 1 is empty at this boundary");
          f.row = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(i)));
          f.col = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          break;
        case Area::LowerTrailing:
          FTH_CHECK(i < n, "area 2 is empty at this boundary");
          f.row = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          f.col = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          break;
        case Area::QPanel: {
          FTH_CHECK(i >= 1 && n > 2, "area 3 is empty at this boundary");
          // Column c < i with a non-empty tail (rows c+2..n−1 ⇒ c ≤ n−3).
          const index_t cmax = std::min<index_t>(i - 1, n - 3);
          FTH_CHECK(cmax >= 0, "area 3 is empty at this boundary");
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(cmax + 1)));
          f.row = f.col + 2 +
                  static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - f.col - 2)));
          break;
        }
        case Area::FinishedH: {
          FTH_CHECK(i >= 1, "finished-H is empty at this boundary");
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(i)));
          f.row = static_cast<index_t>(
              rng_.below(static_cast<std::uint64_t>(std::min(f.col + 2, n))));
          break;
        }
        case Area::Any:
          f.row = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n)));
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n)));
          break;
      }
      f.area = classify(f.row, f.col, i);
    }
    a.fired = true;
    out.push_back(f);
  }
  return out;
}

void Injector::record(index_t boundary, const PendingFault& f) {
  history_.push_back({boundary, f.row, f.col, f.delta, f.area, f.kind});
}

bool Injector::all_fired() const {
  return std::all_of(armed_.begin(), armed_.end(), [](const Armed& a) { return a.fired; });
}

}  // namespace fth::fault

#include "fault/injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fth::fault {

Area classify(index_t row, index_t col, index_t i) {
  if (col >= i) return row < i ? Area::UpperTrailing : Area::LowerTrailing;
  return row > col + 1 ? Area::QPanel : Area::FinishedH;
}

std::string to_string(Area a) {
  switch (a) {
    case Area::Any: return "any";
    case Area::UpperTrailing: return "area1(upper-trailing)";
    case Area::LowerTrailing: return "area2(lower-trailing)";
    case Area::QPanel: return "area3(Q-panel)";
    case Area::FinishedH: return "finished-H";
  }
  return "?";
}

std::string to_string(Moment m) {
  switch (m) {
    case Moment::Beginning: return "B";
    case Moment::Middle: return "M";
    case Moment::End: return "E";
  }
  return "?";
}

index_t moment_boundary(Moment m, index_t total_boundaries) {
  FTH_CHECK(total_boundaries >= 1, "moment_boundary: no iterations");
  switch (m) {
    case Moment::Beginning: return 1;
    case Moment::Middle: return std::max<index_t>(1, (total_boundaries + 1) / 2);
    case Moment::End: return total_boundaries;
  }
  return 1;
}

Injector::Injector(std::vector<FaultSpec> specs, std::uint64_t seed) : rng_(seed) {
  armed_.reserve(specs.size());
  for (auto& s : specs) armed_.push_back({s, false});
}

Injector::Injector(const FaultSpec& spec, std::uint64_t seed)
    : Injector(std::vector<FaultSpec>{spec}, seed) {}

std::vector<PendingFault> Injector::due(index_t boundary, index_t total_boundaries, index_t i,
                                        index_t n, double scale) {
  std::vector<PendingFault> out;
  for (auto& a : armed_) {
    if (a.fired) continue;
    const index_t target = a.spec.boundary >= 0
                               ? a.spec.boundary
                               : moment_boundary(a.spec.moment, total_boundaries);
    if (boundary != target) continue;

    PendingFault f;
    f.delta = a.spec.relative ? a.spec.magnitude * scale : a.spec.magnitude;
    if (a.spec.row >= 0 && a.spec.col >= 0) {
      f.row = a.spec.row;
      f.col = a.spec.col;
      f.area = classify(f.row, f.col, i);
    } else {
      // Draw coordinates uniformly inside the requested area at this
      // boundary. All areas are non-empty once at least one panel is done
      // and at least one trailing column remains.
      switch (a.spec.area) {
        case Area::UpperTrailing:
          FTH_CHECK(i >= 1 && i < n, "area 1 is empty at this boundary");
          f.row = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(i)));
          f.col = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          break;
        case Area::LowerTrailing:
          FTH_CHECK(i < n, "area 2 is empty at this boundary");
          f.row = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          f.col = i + static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - i)));
          break;
        case Area::QPanel: {
          FTH_CHECK(i >= 1 && n > 2, "area 3 is empty at this boundary");
          // Column c < i with a non-empty tail (rows c+2..n−1 ⇒ c ≤ n−3).
          const index_t cmax = std::min<index_t>(i - 1, n - 3);
          FTH_CHECK(cmax >= 0, "area 3 is empty at this boundary");
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(cmax + 1)));
          f.row = f.col + 2 +
                  static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n - f.col - 2)));
          break;
        }
        case Area::FinishedH: {
          FTH_CHECK(i >= 1, "finished-H is empty at this boundary");
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(i)));
          f.row = static_cast<index_t>(
              rng_.below(static_cast<std::uint64_t>(std::min(f.col + 2, n))));
          break;
        }
        case Area::Any:
          f.row = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n)));
          f.col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(n)));
          break;
      }
      f.area = classify(f.row, f.col, i);
    }
    a.fired = true;
    out.push_back(f);
  }
  return out;
}

void Injector::record(index_t boundary, const PendingFault& f) {
  history_.push_back({boundary, f.row, f.col, f.delta, f.area});
}

bool Injector::all_fired() const {
  return std::all_of(armed_.begin(), armed_.end(), [](const Armed& a) { return a.fired; });
}

}  // namespace fth::fault

// In-flight fault plane: transient errors that strike *while* the
// factorization runs, not just at iteration boundaries.
//
// The paper's failure model (Section IV-A) is a silent element change at an
// arbitrary point in time. The boundary Injector approximates that by
// striking between iterations; the FaultPlane removes the approximation.
// It installs hooks into the hybrid layer (Stream task hook, Device
// transfer hook) and fires armed faults asynchronously on the stream
// worker thread: after the k-th task, inside an h2d/d2h transfer, between
// the right and left block updates, or while a recovery is re-executing.
//
// Targets are *surfaces* the FT drivers register (trailing matrix,
// checksum row/column, host checkpoint buffer), so a fired fault always
// lands somewhere the ABFT scheme claims to protect. Striking a shipped
// operand (V, W, T) instead would be self-consistent under the checksum
// relation — Theorem 1 holds for whatever V the update actually used — and
// therefore silently undetectable by construction; DESIGN.md §9 records
// that capability boundary.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "hybrid/device.hpp"
#include "hybrid/pool.hpp"
#include "la/matrix.hpp"

namespace fth::fault {

/// When an in-flight fault is allowed to fire. Each eligible occurrence of
/// the trigger decrements the fault's countdown; the fault fires when it
/// reaches zero.
enum class When {
  StreamTask,      ///< after any stream task (the k-th eligible task)
  TransferH2D,     ///< inside an h2d transfer whose destination is a registered surface
  TransferD2H,     ///< inside a d2h transfer whose destination is a registered surface
  BetweenUpdates,  ///< between the right and left block updates of an iteration
  DuringRecovery,  ///< after a stream task, but only while a recovery re-executes
};

/// Which protected surface the corruption lands on. The FT driver registers
/// the concrete memory for each surface it maintains; Transfer* triggers
/// ignore the requested surface and corrupt the transfer destination.
enum class Surface {
  TrailingMatrix,  ///< the device trailing matrix / extended matrix data block
  ChecksumRow,     ///< the maintained checksum row (column sums)
  ChecksumCol,     ///< the maintained checksum column (row sums)
  Checkpoint,      ///< the host panel-checkpoint buffers
};

/// How the registered view is populated, so the element picker never lands
/// on storage the algorithm ignores (e.g. the strictly upper triangle of a
/// symmetric device matrix — corrupting it would be a silent no-op and
/// break the campaign's detection accounting).
enum class SurfaceShape { Full, LowerTriangle };

std::string to_string(When w);
std::string to_string(Surface s);

/// How a pool member dies (ISSUE: device_loss strike class). Unlike the
/// element-level FaultKind corruptions, these model the *whole device*
/// becoming untrustworthy mid-run; the pool driver answers with coded
/// reconstruction instead of rollback.
enum class LossKind {
  SilentStall,   ///< the worker thread hangs mid-task until the stream is quarantined
  PoisonOutput,  ///< the device keeps running but scribbles garbage over its shard
  HardDeath,     ///< the stream is killed: queued and future work is discarded
};

std::string to_string(LossKind k);

/// One armed device-loss strike against a pool member.
struct DeviceLossFault {
  LossKind kind = LossKind::HardDeath;
  int device = 0;               ///< pool ordinal to strike
  std::uint64_t countdown = 1;  ///< fires after the countdown-th post-encode task on it
};

class FaultPlane;

/// The plane's fired faults + losses rendered as a JSON object
/// (`{"faults":[…],"losses":[…]}`) — the strike ledger embedded in
/// incident capsules (obs/incident.hpp).
[[nodiscard]] std::string strikes_json(const FaultPlane& plane);

/// Record of a device-loss strike that fired.
struct FiredLoss {
  LossKind kind = LossKind::HardDeath;
  int device = 0;
  std::uint64_t trigger_index = 0;  ///< that device's post-encode task count at fire time
};

/// One armed in-flight fault.
struct InFlightFault {
  When when = When::StreamTask;
  Surface surface = Surface::TrailingMatrix;  ///< ignored for Transfer* triggers
  FaultKind kind = FaultKind::BitFlip;
  std::uint64_t countdown = 1;  ///< fires on the countdown-th eligible trigger
  int bit = -1;                 ///< explicit bit for flip kinds (< 0 draws per kind)
  double delta = 0.0;           ///< AddDelta payload
  /// Minimum |after − before| for flip kinds: the picker redraws bit and
  /// element (bounded retries) until the change is at least this large or
  /// non-finite, so a campaign asserting 100% detection is not defeated by
  /// a low-mantissa flip on a subnormal. 0 accepts any change.
  double min_impact = 0.0;
};

/// What actually happened when a fault fired.
struct FiredFault {
  When when = When::StreamTask;
  Surface surface = Surface::TrailingMatrix;
  FaultKind kind = FaultKind::BitFlip;
  index_t row = 0;  ///< coordinates within the struck view
  index_t col = 0;
  double before = 0.0;
  double after = 0.0;
  int bit = -1;
  std::uint64_t trigger_index = 0;  ///< eligible-trigger count at fire time
};

/// Counts of eligible trigger occurrences, for deriving countdown ranges
/// from a clean reference run.
struct TriggerCounts {
  std::uint64_t tasks = 0;            ///< stream tasks after mark_encoded()
  std::uint64_t h2d = 0;              ///< eligible h2d transfers
  std::uint64_t d2h = 0;              ///< eligible d2h transfers
  std::uint64_t between_updates = 0;  ///< BetweenUpdates phase marks
};

/// Arms faults, hooks the hybrid layer, and fires corruptions from the
/// stream worker thread. Thread-safe; one plane serves one factorization
/// run (bind → run → unbind). A plane with no armed faults is a pure
/// trigger counter, which is how campaigns measure a clean reference run
/// before drawing random countdowns for the faulty run.
class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed = 0xB17F11Bull);
  ~FaultPlane();

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Arm one fault. May be called repeatedly before (not during) a run.
  void arm(const InFlightFault& f);

  // --- driver-facing wiring -------------------------------------------
  /// Install the stream-task and transfer hooks on `dev`. The driver calls
  /// this once in its constructor when options carry a plane.
  void bind(hybrid::Device& dev);
  /// Remove the hooks and forget registered surfaces. Idempotent; also run
  /// by the destructor so a throwing driver cannot leave hooks dangling.
  void unbind();
  /// Register (or replace) the memory behind a surface. Views must stay
  /// valid until unbind(). Device surfaces are only dereferenced from the
  /// worker thread, host surfaces only between tasks — both race-free.
  void register_surface(Surface s, MatrixView<double> view,
                        SurfaceShape shape = SurfaceShape::Full);
  /// Device-surface overload. The plane dereferences device surfaces only
  /// from the stream worker thread (every fire path runs inside a task or
  /// the task/transfer hooks), so unwrapping the space tag here does not
  /// widen the discipline the checker enforces elsewhere.
  void register_surface(Surface s, MatrixView<double, MemSpace::Device> view,
                        SurfaceShape shape = SurfaceShape::Full) {
    register_surface(s, view.unchecked_host_view(), shape);
  }
  void clear_surface(Surface s);
  /// Additionally mark a transfer destination as fault-eligible under the
  /// given surface label. Transfer* triggers fire only on transfers whose
  /// destination overlaps a registered surface or one of these targets —
  /// that keeps transfer faults inside the protected domain (striking a
  /// shipped operand would be silently undetectable, see above).
  void add_transfer_target(Surface tag, MatrixView<double> view);
  void add_transfer_target(Surface tag, MatrixView<double, MemSpace::Device> view) {
    add_transfer_target(tag, view.unchecked_host_view());
  }
  void clear_transfer_targets();
  /// Triggers are gated until the driver finished its initial encoding: a
  /// strike before the checksums exist is encoded consistently and becomes
  /// indistinguishable from a different input matrix (see DESIGN.md §9).
  void mark_encoded();
  /// The driver marks the window between the right and left block updates;
  /// BetweenUpdates faults are enqueued on `s` so they execute in order
  /// inside that window.
  void on_between_updates(hybrid::Stream& s);
  /// The driver brackets recovery re-execution; DuringRecovery faults only
  /// count triggers while active.
  void set_in_recovery(bool active);

  // --- device-loss strikes (pool runs) ---------------------------------
  /// Arm one device-loss strike. Fires from the victim's worker thread
  /// after its countdown-th post-encode task; requires bind_pool().
  void arm_device_loss(const DeviceLossFault& f);
  /// Install per-member stream-task hooks on every device of `pool`.
  /// Destroy (or unbind()) the plane before the pool: unbind releases any
  /// SilentStall still blocking a worker, so the pool's stream destructors
  /// can join.
  void bind_pool(hybrid::DevicePool& pool);
  /// The memory a PoisonOutput strike on `device` scribbles over — the pool
  /// driver registers each member's shard buffer. Same worker-thread-only
  /// dereference contract as register_surface's device overload.
  void register_loss_surface(int device, MatrixView<double, MemSpace::Device> view) {
    register_loss_surface_host(device, view.unchecked_host_view());
  }
  void register_loss_surface_host(int device, MatrixView<double> view);

  // --- results ---------------------------------------------------------
  [[nodiscard]] std::vector<FiredFault> fired() const;
  [[nodiscard]] bool all_fired() const;
  [[nodiscard]] int armed_remaining() const;
  [[nodiscard]] TriggerCounts trigger_counts() const;
  [[nodiscard]] std::vector<FiredLoss> fired_losses() const;
  /// Post-encode task count of one pool member (countdown calibration for
  /// soak campaigns, like TriggerCounts for element faults).
  [[nodiscard]] std::uint64_t pool_task_count(int device) const;

 private:
  struct ArmedFault {
    InFlightFault spec;
    std::uint64_t remaining = 1;
    bool fired = false;
  };
  struct Registered {
    bool valid = false;
    MatrixView<double> view{};
    SurfaceShape shape = SurfaceShape::Full;
  };
  struct TransferTarget {
    Surface tag = Surface::Checkpoint;
    MatrixView<double> view{};
  };

  struct ArmedLoss {
    DeviceLossFault spec;
    std::uint64_t remaining = 1;
    bool fired = false;
  };

  void on_task_hook(std::uint64_t task_index);
  void on_transfer_hook(hybrid::TransferDir dir, MatrixView<double> dst);
  void on_pool_task_hook(int device, hybrid::Stream* s);
  // All fire paths run on the worker thread (or inside an enqueued task)
  // with m_ held; they corrupt memory directly.
  void tick(When trigger, std::uint64_t trigger_index);
  void fire_on_surface(ArmedFault& a, std::uint64_t trigger_index);
  void fire_on_view(ArmedFault& a, MatrixView<double> view, SurfaceShape shape,
                    Surface surface, When when, std::uint64_t trigger_index);
  [[nodiscard]] const Registered* surface_for(Surface s) const;

  mutable std::mutex m_;
  Rng rng_;
  hybrid::Device* dev_ = nullptr;
  hybrid::DevicePool* pool_ = nullptr;
  bool encoded_ = false;
  bool in_recovery_ = false;
  Registered surfaces_[4];
  std::vector<TransferTarget> transfer_targets_;
  std::vector<ArmedFault> armed_;
  std::vector<FiredFault> fired_;
  TriggerCounts counts_;
  // Device-loss state. stall_release_ is the escape hatch for SilentStall
  // workers: set by unbind() so stream destructors can always join.
  std::vector<ArmedLoss> armed_losses_;
  std::vector<FiredLoss> fired_losses_;
  std::vector<std::uint64_t> pool_counts_;
  std::vector<MatrixView<double>> loss_surfaces_;
  std::atomic<bool> stall_release_{false};
  std::atomic<int> stalls_active_{0};
};

}  // namespace fth::fault

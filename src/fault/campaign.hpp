// Monte-Carlo fault-injection campaigns.
//
// Runs the fault-tolerant reduction many times with randomized faults and
// aggregates detection/correction statistics and result quality — the
// experimental harness behind the examples and the robustness tests.
//
// Two modes:
//  * boundary mode (default): the classic Injector plants additive faults
//    between iterations, the paper's Section VI setup;
//  * in-flight soak mode (`in_flight = true`): each trial arms a FaultPlane
//    fault of one SoakClass — IEEE-754 bit flips, NaN/Inf poisoning,
//    checksum/checkpoint strikes, transfer corruption, faults during an
//    ongoing recovery — fired asynchronously mid-run. Countdowns are drawn
//    from the trigger counts of a per-trial clean reference run, so strikes
//    land uniformly across the factorization's real schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"  // FtReport
#include "ft/pool_gehrd.hpp"  // PoolGehrdReport (device-loss soak)
#include "ft/recovery.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"

namespace fth::fault {

/// Which fault-tolerant factorization a campaign exercises.
enum class Algorithm {
  Gehrd,  ///< Hessenberg reduction (the paper's algorithm)
  Sytrd,  ///< symmetric tridiagonal reduction (extension)
  Gebrd,  ///< bidiagonal reduction (extension)
};

std::string to_string(Algorithm a);

/// Fault class of one in-flight soak trial.
enum class SoakClass {
  BoundaryDelta,     ///< classic additive boundary fault (Injector)
  InFlightBitFlip,   ///< mantissa/exponent/sign flip in the trailing matrix mid-run
  InFlightNaN,       ///< quiet-NaN poisoning of a trailing-matrix element
  InFlightInf,       ///< ±Inf poisoning of a trailing-matrix element
  ChecksumStrike,    ///< bit flip on a maintained checksum vector
  TransferStrike,    ///< corruption inside a transfer landing in the protected domain
  CheckpointStrike,  ///< host checkpoint corrupted, then a boundary fault forces its use
  DuringRecovery,    ///< a second fault strikes while a recovery re-executes
};

std::string to_string(SoakClass c);

struct CampaignConfig {
  Algorithm algorithm = Algorithm::Gehrd;
  index_t n = 256;            ///< matrix size
  index_t nb = 32;            ///< panel width
  int trials = 20;            ///< independent runs
  int faults_per_trial = 1;   ///< simultaneous faults per run
  Area area = Area::Any;      ///< region to strike (boundary mode)
  double magnitude = 100.0;   ///< relative fault magnitude
  std::uint64_t seed = 2026;  ///< master seed (matrix + fault placement)
  /// Soak mode: arm FaultPlane faults instead of (or paired with) boundary
  /// faults. Trials cycle through `classes` (all eight when empty).
  bool in_flight = false;
  std::vector<SoakClass> classes;
};

struct TrialOutcome {
  std::vector<InjectionRecord> injected;    ///< boundary faults planted
  std::vector<FiredFault> in_flight_fired;  ///< in-flight faults that struck
  std::uint64_t run_id = 0;  ///< journal run id stamped around the faulty run
  /// Incident capsule paths written for this trial (a recovery_error with
  /// capsule emission armed, obs/incident.hpp; empty otherwise).
  std::vector<std::string> incidents;
  SoakClass fault_class = SoakClass::BoundaryDelta;  ///< soak class (in-flight mode)
  int detections = 0;
  int corrections = 0;     ///< data + checksum + Q corrections
  bool detected = false;   ///< any FT mechanism saw the fault (see run_campaign)
  bool recovered = false;
  bool result_correct = false;  ///< matches the fault-free factorization
  double max_error_vs_clean = 0.0;
  std::string failure;  ///< non-empty when recovery threw
  /// Structured end-of-run outcome (mirrors FtReport.outcome; filled even
  /// when the run aborted — that is the point of the structured ladder).
  ft::RecoveryOutcome outcome;
  /// The faulty run's full resilience report (per-mechanism counters and
  /// per-recovery events) for cross-checking against the obs layer.
  ft::FtReport report;
  /// Global-registry counters this trial's *faulty* run moved (snapshot
  /// delta around the run; the clean reference run is excluded), so soak
  /// counters are attributable per trial instead of cumulative.
  obs::Registry::CounterValues metric_deltas;
};

struct CampaignResult {
  std::vector<TrialOutcome> trials;
  int recovered_count = 0;
  int correct_count = 0;
  int detected_count = 0;  ///< trials where some FT mechanism fired
  int aborted_count = 0;   ///< structured Unrecoverable outcomes (not crashes)
  int fired_count = 0;     ///< trials whose armed in-flight faults all struck
  double worst_error_vs_clean = 0.0;
};

/// Run the campaign on a random matrix per trial.
CampaignResult run_campaign(const CampaignConfig& cfg);

// ---- device-loss soak (ISSUE 7: pool runs) ---------------------------------

/// Monte-Carlo device-loss campaign over ft::pool_gehrd. Each trial runs a
/// clean pool reduction first with an idle plane riding along as a task
/// counter (FaultPlane::pool_task_count), then draws a victim device and a
/// countdown inside that member's real schedule and re-runs with one armed
/// DeviceLossFault. Trials cycle through `kinds` (all three when empty).
struct DeviceLossSoakConfig {
  index_t n = 256;
  index_t nb = 32;
  int devices = 3;
  int trials = 9;
  std::uint64_t seed = 2026;
  /// Health-check timeout handed to the driver; small keeps SilentStall
  /// trials fast, large enough to never false-trigger on a healthy member.
  double timeout_ms = 500.0;
  std::vector<LossKind> kinds;
};

struct DeviceLossTrial {
  LossKind kind = LossKind::HardDeath;
  int device = 0;               ///< victim ordinal
  std::uint64_t countdown = 0;  ///< post-encode task countdown drawn
  bool fired = false;           ///< the strike actually landed
  bool recovered = false;       ///< run completed (possibly degraded)
  bool result_correct = false;  ///< matches the fault-free host factorization
  double max_error_vs_clean = 0.0;
  std::string failure;  ///< non-empty when the run threw
  ft::PoolGehrdReport report;
};

struct DeviceLossSoakResult {
  std::vector<DeviceLossTrial> trials;
  int fired_count = 0;
  int recovered_count = 0;
  int correct_count = 0;
  double worst_error_vs_clean = 0.0;
};

DeviceLossSoakResult run_device_loss_soak(const DeviceLossSoakConfig& cfg);

}  // namespace fth::fault

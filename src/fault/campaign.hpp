// Monte-Carlo fault-injection campaigns.
//
// Runs the fault-tolerant reduction many times with randomized faults and
// aggregates detection/correction statistics and result quality — the
// experimental harness behind the examples and the robustness tests.
//
// Two modes:
//  * boundary mode (default): the classic Injector plants additive faults
//    between iterations, the paper's Section VI setup;
//  * in-flight soak mode (`in_flight = true`): each trial arms a FaultPlane
//    fault of one SoakClass — IEEE-754 bit flips, NaN/Inf poisoning,
//    checksum/checkpoint strikes, transfer corruption, faults during an
//    ongoing recovery — fired asynchronously mid-run. Countdowns are drawn
//    from the trigger counts of a per-trial clean reference run, so strikes
//    land uniformly across the factorization's real schedule.
#pragma once

#include <vector>

#include "fault/fault_plane.hpp"
#include "fault/injector.hpp"
#include "ft/ft_gehrd.hpp"  // FtReport
#include "ft/recovery.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"

namespace fth::fault {

/// Which fault-tolerant factorization a campaign exercises.
enum class Algorithm {
  Gehrd,  ///< Hessenberg reduction (the paper's algorithm)
  Sytrd,  ///< symmetric tridiagonal reduction (extension)
  Gebrd,  ///< bidiagonal reduction (extension)
};

std::string to_string(Algorithm a);

/// Fault class of one in-flight soak trial.
enum class SoakClass {
  BoundaryDelta,     ///< classic additive boundary fault (Injector)
  InFlightBitFlip,   ///< mantissa/exponent/sign flip in the trailing matrix mid-run
  InFlightNaN,       ///< quiet-NaN poisoning of a trailing-matrix element
  InFlightInf,       ///< ±Inf poisoning of a trailing-matrix element
  ChecksumStrike,    ///< bit flip on a maintained checksum vector
  TransferStrike,    ///< corruption inside a transfer landing in the protected domain
  CheckpointStrike,  ///< host checkpoint corrupted, then a boundary fault forces its use
  DuringRecovery,    ///< a second fault strikes while a recovery re-executes
};

std::string to_string(SoakClass c);

struct CampaignConfig {
  Algorithm algorithm = Algorithm::Gehrd;
  index_t n = 256;            ///< matrix size
  index_t nb = 32;            ///< panel width
  int trials = 20;            ///< independent runs
  int faults_per_trial = 1;   ///< simultaneous faults per run
  Area area = Area::Any;      ///< region to strike (boundary mode)
  double magnitude = 100.0;   ///< relative fault magnitude
  std::uint64_t seed = 2026;  ///< master seed (matrix + fault placement)
  /// Soak mode: arm FaultPlane faults instead of (or paired with) boundary
  /// faults. Trials cycle through `classes` (all eight when empty).
  bool in_flight = false;
  std::vector<SoakClass> classes;
};

struct TrialOutcome {
  std::vector<InjectionRecord> injected;    ///< boundary faults planted
  std::vector<FiredFault> in_flight_fired;  ///< in-flight faults that struck
  SoakClass fault_class = SoakClass::BoundaryDelta;  ///< soak class (in-flight mode)
  int detections = 0;
  int corrections = 0;     ///< data + checksum + Q corrections
  bool detected = false;   ///< any FT mechanism saw the fault (see run_campaign)
  bool recovered = false;
  bool result_correct = false;  ///< matches the fault-free factorization
  double max_error_vs_clean = 0.0;
  std::string failure;  ///< non-empty when recovery threw
  /// Structured end-of-run outcome (mirrors FtReport.outcome; filled even
  /// when the run aborted — that is the point of the structured ladder).
  ft::RecoveryOutcome outcome;
  /// The faulty run's full resilience report (per-mechanism counters and
  /// per-recovery events) for cross-checking against the obs layer.
  ft::FtReport report;
  /// Global-registry counters this trial's *faulty* run moved (snapshot
  /// delta around the run; the clean reference run is excluded), so soak
  /// counters are attributable per trial instead of cumulative.
  obs::Registry::CounterValues metric_deltas;
};

struct CampaignResult {
  std::vector<TrialOutcome> trials;
  int recovered_count = 0;
  int correct_count = 0;
  int detected_count = 0;  ///< trials where some FT mechanism fired
  int aborted_count = 0;   ///< structured Unrecoverable outcomes (not crashes)
  int fired_count = 0;     ///< trials whose armed in-flight faults all struck
  double worst_error_vs_clean = 0.0;
};

/// Run the campaign on a random matrix per trial.
CampaignResult run_campaign(const CampaignConfig& cfg);

}  // namespace fth::fault

// Monte-Carlo fault-injection campaigns.
//
// Runs the fault-tolerant reduction many times with randomized faults and
// aggregates detection/correction statistics and result quality — the
// experimental harness behind the examples and the robustness tests.
#pragma once

#include <vector>

#include "fault/injector.hpp"
#include "la/matrix.hpp"

namespace fth::fault {

/// Which fault-tolerant factorization a campaign exercises.
enum class Algorithm {
  Gehrd,  ///< Hessenberg reduction (the paper's algorithm)
  Sytrd,  ///< symmetric tridiagonal reduction (extension)
  Gebrd,  ///< bidiagonal reduction (extension)
};

std::string to_string(Algorithm a);

struct CampaignConfig {
  Algorithm algorithm = Algorithm::Gehrd;
  index_t n = 256;            ///< matrix size
  index_t nb = 32;            ///< panel width
  int trials = 20;            ///< independent runs
  int faults_per_trial = 1;   ///< simultaneous faults per run
  Area area = Area::Any;      ///< region to strike
  double magnitude = 100.0;   ///< relative fault magnitude
  std::uint64_t seed = 2026;  ///< master seed (matrix + fault placement)
};

struct TrialOutcome {
  std::vector<InjectionRecord> injected;
  int detections = 0;
  int corrections = 0;  ///< data + checksum + Q corrections
  bool recovered = false;
  bool result_correct = false;  ///< matches the fault-free factorization
  double max_error_vs_clean = 0.0;
  std::string failure;  ///< non-empty when recovery threw
};

struct CampaignResult {
  std::vector<TrialOutcome> trials;
  int recovered_count = 0;
  int correct_count = 0;
  double worst_error_vs_clean = 0.0;
};

/// Run the campaign on a random matrix per trial.
CampaignResult run_campaign(const CampaignConfig& cfg);

}  // namespace fth::fault

#include "fault/fault_plane.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fth::fault {

namespace {

// Address span of a column-major view (half-open, in elements).
struct Span {
  const double* lo;
  const double* hi;
};

Span span_of(MatrixView<const double> v) {
  if (v.empty() || v.data() == nullptr) return {nullptr, nullptr};
  return {v.data(), v.data() + (v.cols() - 1) * v.ld() + v.rows()};
}

bool overlaps(MatrixView<const double> a, MatrixView<const double> b) {
  const Span sa = span_of(a), sb = span_of(b);
  if (sa.lo == nullptr || sb.lo == nullptr) return false;
  return sa.lo < sb.hi && sb.lo < sa.hi;
}

int draw_flip_bit(FaultKind k, int spec_bit, Rng& rng) {
  switch (k) {
    case FaultKind::BitFlip:
      return spec_bit >= 0 && spec_bit < 64 ? spec_bit : static_cast<int>(rng.below(64));
    case FaultKind::SignFlip:
      return 63;
    case FaultKind::ExponentFlip:
      return spec_bit >= 52 && spec_bit <= 62 ? spec_bit : 52 + static_cast<int>(rng.below(11));
    case FaultKind::MantissaFlip:
      return spec_bit >= 0 && spec_bit <= 51 ? spec_bit : static_cast<int>(rng.below(52));
    default:
      return -1;
  }
}

}  // namespace

std::string to_string(When w) {
  switch (w) {
    case When::StreamTask: return "stream-task";
    case When::TransferH2D: return "transfer-h2d";
    case When::TransferD2H: return "transfer-d2h";
    case When::BetweenUpdates: return "between-updates";
    case When::DuringRecovery: return "during-recovery";
  }
  return "?";
}

std::string to_string(Surface s) {
  switch (s) {
    case Surface::TrailingMatrix: return "trailing-matrix";
    case Surface::ChecksumRow: return "checksum-row";
    case Surface::ChecksumCol: return "checksum-col";
    case Surface::Checkpoint: return "checkpoint";
  }
  return "?";
}

std::string to_string(LossKind k) {
  switch (k) {
    case LossKind::SilentStall: return "silent-stall";
    case LossKind::PoisonOutput: return "poison-output";
    case LossKind::HardDeath: return "hard-death";
  }
  return "?";
}

FaultPlane::FaultPlane(std::uint64_t seed) : rng_(seed) {}

FaultPlane::~FaultPlane() { unbind(); }

void FaultPlane::arm(const InFlightFault& f) {
  FTH_CHECK(f.countdown >= 1, "fault countdown must be at least 1");
  std::lock_guard lock(m_);
  armed_.push_back({f, f.countdown, false});
  obs::counter_metric("fault.inflight_armed").add();
}

void FaultPlane::bind(hybrid::Device& dev) {
  std::lock_guard lock(m_);
  FTH_CHECK(dev_ == nullptr || dev_ == &dev, "fault plane already bound to another device");
  dev_ = &dev;
  dev.stream().set_task_hook([this](std::uint64_t idx) { on_task_hook(idx); });
  dev.set_transfer_hook(
      [this](hybrid::TransferDir dir, MatrixView<double> dst) { on_transfer_hook(dir, dst); });
}

void FaultPlane::unbind() {
  // Callers must have drained the stream first (the drivers synchronize
  // before returning or throwing), so no hook invocation can be in flight
  // once the hooks are cleared here. The one exception is a SilentStall
  // strike still blocking a pool worker: stall_release_ frees it below, and
  // we wait for it to leave the plane before returning so the destructor
  // can never free state under a blocked hook.
  hybrid::Device* dev = nullptr;
  hybrid::DevicePool* pool = nullptr;
  {
    std::lock_guard lock(m_);
    dev = dev_;
    dev_ = nullptr;
    pool = pool_;
    pool_ = nullptr;
    for (auto& r : surfaces_) r.valid = false;
    transfer_targets_.clear();
    loss_surfaces_.clear();
  }
  stall_release_.store(true);
  while (stalls_active_.load() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (dev != nullptr) {
    dev->stream().set_task_hook(nullptr);
    dev->set_transfer_hook(nullptr);
  }
  if (pool != nullptr) {
    for (int d = 0; d < pool->size(); ++d) pool->stream(d).set_task_hook(nullptr);
  }
}

void FaultPlane::arm_device_loss(const DeviceLossFault& f) {
  FTH_CHECK(f.countdown >= 1, "device-loss countdown must be at least 1");
  FTH_CHECK(f.device >= 0, "device-loss target must be a pool ordinal");
  std::lock_guard lock(m_);
  armed_losses_.push_back({f, f.countdown, false});
  obs::counter_metric("fault.device_loss.armed").add();
}

void FaultPlane::bind_pool(hybrid::DevicePool& pool) {
  {
    std::lock_guard lock(m_);
    FTH_CHECK(pool_ == nullptr || pool_ == &pool,
              "fault plane already bound to another pool");
    pool_ = &pool;
    pool_counts_.assign(static_cast<std::size_t>(pool.size()), 0);
    loss_surfaces_.assign(static_cast<std::size_t>(pool.size()), MatrixView<double>{});
  }
  for (int d = 0; d < pool.size(); ++d) {
    hybrid::Stream* s = &pool.stream(d);
    pool.stream(d).set_task_hook([this, d, s](std::uint64_t) { on_pool_task_hook(d, s); });
  }
}

void FaultPlane::register_loss_surface_host(int device, MatrixView<double> view) {
  std::lock_guard lock(m_);
  if (static_cast<std::size_t>(device) >= loss_surfaces_.size())
    loss_surfaces_.resize(static_cast<std::size_t>(device) + 1, MatrixView<double>{});
  loss_surfaces_[static_cast<std::size_t>(device)] = view;
}

void FaultPlane::on_pool_task_hook(int device, hybrid::Stream* s) {
  LossKind todo = LossKind::HardDeath;
  bool fire = false;
  {
    std::lock_guard lock(m_);
    if (!encoded_) return;
    if (static_cast<std::size_t>(device) >= pool_counts_.size())
      pool_counts_.resize(static_cast<std::size_t>(device) + 1, 0);
    const std::uint64_t idx = ++pool_counts_[static_cast<std::size_t>(device)];
    for (auto& a : armed_losses_) {
      if (a.fired || a.spec.device != device) continue;
      if (--a.remaining != 0) continue;
      a.fired = true;
      fired_losses_.push_back({a.spec.kind, device, idx});
      obs::counter_metric("fault.device_loss.injected").add();
      obs::counter_metric("fault.device_loss.injected.dev" + std::to_string(device)).add();
      obs::counter_metric("fault.device_loss." + [k = a.spec.kind] {
        switch (k) {
          case LossKind::SilentStall: return std::string("stall");
          case LossKind::PoisonOutput: return std::string("poison");
          case LossKind::HardDeath: return std::string("hard_death");
        }
        return std::string("?");
      }()).add();
      obs::instant("fault", "device_loss");
      // Journal the strike itself: this is the t0 fth_incident measures
      // detection latency from.
      if (obs::journal_enabled())
        obs::journal_log(obs::JournalSeverity::Error, "fault", "device_loss", device,
                         static_cast<double>(idx), -1, to_string(a.spec.kind));
      todo = a.spec.kind;
      fire = true;
      if (todo == LossKind::PoisonOutput) {
        // Scribble over the member's registered shard while we still hold
        // m_ — we are on that device's own worker thread, so this is the
        // same discipline as fire_on_view.
        MatrixView<double> v = loss_surfaces_[static_cast<std::size_t>(device)];
        if (!v.empty()) {
          for (int k = 0; k < 4; ++k) {
            const index_t row =
                static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(v.rows())));
            const index_t col =
                static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(v.cols())));
            v(row, col) = 1e30 * static_cast<double>(k + 1);
          }
        }
      }
      break;
    }
  }
  if (!fire) return;
  // The blocking/stream-touching halves run without m_: a stalled worker
  // must not wedge the plane, and kill() takes the stream's own mutex.
  if (todo == LossKind::HardDeath) {
    s->kill();
  } else if (todo == LossKind::SilentStall) {
    stalls_active_.fetch_add(1);
    while (!stall_release_.load() && !s->killed())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stalls_active_.fetch_sub(1);
  }
}

void FaultPlane::register_surface(Surface s, MatrixView<double> view, SurfaceShape shape) {
  std::lock_guard lock(m_);
  auto& r = surfaces_[static_cast<int>(s)];
  r.valid = true;
  r.view = view;
  r.shape = shape;
}

void FaultPlane::clear_surface(Surface s) {
  std::lock_guard lock(m_);
  surfaces_[static_cast<int>(s)].valid = false;
}

void FaultPlane::add_transfer_target(Surface tag, MatrixView<double> view) {
  std::lock_guard lock(m_);
  transfer_targets_.push_back({tag, view});
}

void FaultPlane::clear_transfer_targets() {
  std::lock_guard lock(m_);
  transfer_targets_.clear();
}

void FaultPlane::mark_encoded() {
  std::lock_guard lock(m_);
  encoded_ = true;
}

void FaultPlane::set_in_recovery(bool active) {
  std::lock_guard lock(m_);
  in_recovery_ = active;
}

const FaultPlane::Registered* FaultPlane::surface_for(Surface s) const {
  const auto& r = surfaces_[static_cast<int>(s)];
  return r.valid && !r.view.empty() ? &r : nullptr;
}

void FaultPlane::on_task_hook(std::uint64_t) {
  std::lock_guard lock(m_);
  if (!encoded_) return;
  ++counts_.tasks;
  for (auto& a : armed_) {
    if (a.fired) continue;
    const bool eligible = a.spec.when == When::StreamTask ||
                          (a.spec.when == When::DuringRecovery && in_recovery_);
    if (!eligible) continue;
    if (--a.remaining == 0) fire_on_surface(a, counts_.tasks);
  }
}

void FaultPlane::on_transfer_hook(hybrid::TransferDir dir, MatrixView<double> dst) {
  std::lock_guard lock(m_);
  if (!encoded_) return;
  // Only transfers landing on a registered surface are eligible: a strike
  // on a shipped operand (V, T, W) is self-consistent under the checksum
  // relation and undetectable by construction.
  Surface hit = Surface::TrailingMatrix;
  bool eligible = false;
  for (int s = 0; s < 4 && !eligible; ++s) {
    const auto& r = surfaces_[s];
    if (r.valid && overlaps(r.view, dst)) {
      hit = static_cast<Surface>(s);
      eligible = true;
    }
  }
  for (std::size_t t = 0; t < transfer_targets_.size() && !eligible; ++t) {
    if (overlaps(transfer_targets_[t].view, dst)) {
      hit = transfer_targets_[t].tag;
      eligible = true;
    }
  }
  if (!eligible) return;
  const When want =
      dir == hybrid::TransferDir::H2D ? When::TransferH2D : When::TransferD2H;
  auto& count = dir == hybrid::TransferDir::H2D ? counts_.h2d : counts_.d2h;
  ++count;
  for (auto& a : armed_) {
    if (a.fired || a.spec.when != want) continue;
    if (--a.remaining == 0)
      fire_on_view(a, dst, SurfaceShape::Full, hit, want, count);
  }
}

void FaultPlane::on_between_updates(hybrid::Stream& s) {
  {
    std::lock_guard lock(m_);
    if (!encoded_) return;
    ++counts_.between_updates;
    bool any = false;
    for (const auto& a : armed_)
      if (!a.fired && a.spec.when == When::BetweenUpdates) any = true;
    if (!any) return;
  }
  // Enqueued so the corruption executes in order between the two updates'
  // device tasks, touching device memory only from the worker thread.
  s.enqueue([this] {
    std::lock_guard lock(m_);
    for (auto& a : armed_) {
      if (a.fired || a.spec.when != When::BetweenUpdates) continue;
      if (--a.remaining == 0) fire_on_surface(a, counts_.between_updates);
    }
  });
}

void FaultPlane::fire_on_surface(ArmedFault& a, std::uint64_t trigger_index) {
  const Registered* r = surface_for(a.spec.surface);
  if (r == nullptr) {
    // Surface not (yet) registered: stay armed and retry on the next
    // eligible trigger rather than silently dropping the fault.
    a.remaining = 1;
    return;
  }
  fire_on_view(a, r->view, r->shape, a.spec.surface, a.spec.when, trigger_index);
}

void FaultPlane::fire_on_view(ArmedFault& a, MatrixView<double> view, SurfaceShape shape,
                              Surface surface, When when, std::uint64_t trigger_index) {
  if (view.empty()) {
    a.remaining = 1;
    return;
  }
  FiredFault rec;
  rec.when = when;
  rec.surface = surface;
  rec.kind = a.spec.kind;
  rec.trigger_index = trigger_index;

  // Redraw element and bit until the corruption is impactful enough; a
  // low-mantissa flip on a tiny element would be numerically invisible and
  // defeat campaigns that assert detection.
  for (int attempt = 0; attempt < 64; ++attempt) {
    index_t col = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(view.cols())));
    index_t row;
    if (shape == SurfaceShape::LowerTriangle) {
      if (col >= view.rows()) col = view.rows() - 1;
      row = col + static_cast<index_t>(
                      rng_.below(static_cast<std::uint64_t>(view.rows() - col)));
    } else {
      row = static_cast<index_t>(rng_.below(static_cast<std::uint64_t>(view.rows())));
    }
    const double before = view(row, col);
    const int bit = draw_flip_bit(a.spec.kind, a.spec.bit, rng_);
    const double after =
        bit >= 0 ? flip_bit(before, bit)
                 : corrupt_value(before, a.spec.kind, a.spec.bit, a.spec.delta, rng_);
    const bool impactful = !std::isfinite(after) ||
                           std::abs(after - before) >= a.spec.min_impact;
    if ((after != before || !std::isfinite(after)) && impactful) {
      rec.row = row;
      rec.col = col;
      rec.before = before;
      rec.after = after;
      rec.bit = bit;
      view(row, col) = after;
      break;
    }
    if (attempt == 63) {
      // Could not meet min_impact (e.g. an all-zero surface): strike the
      // last candidate anyway so the fault is never silently lost.
      rec.row = row;
      rec.col = col;
      rec.before = before;
      rec.after = after;
      rec.bit = bit;
      view(row, col) = after;
    }
  }

  a.fired = true;
  fired_.push_back(rec);
  obs::counter_metric("fault.inflight_fired").add();
  // Per-device attribution so a pool campaign can tell which member a
  // strike landed on (single-device runs report .dev0).
  if (dev_ != nullptr)
    obs::counter_metric("fault.inflight_fired.dev" + std::to_string(dev_->ordinal())).add();
  if (!std::isfinite(rec.after)) obs::counter_metric("fault.nonfinite_injected").add();
  if (rec.bit >= 0) obs::counter_metric("fault.bitflips").add();
  obs::instant("fault", "inflight_fire");
  if (obs::journal_enabled())
    obs::journal_log(obs::JournalSeverity::Error, "fault", "strike",
                     dev_ != nullptr ? dev_->ordinal() : -1,
                     static_cast<double>(rec.trigger_index), -1,
                     to_string(rec.kind) + " @ " + to_string(rec.surface));
}

std::vector<FiredFault> FaultPlane::fired() const {
  std::lock_guard lock(m_);
  return fired_;
}

bool FaultPlane::all_fired() const {
  std::lock_guard lock(m_);
  for (const auto& a : armed_)
    if (!a.fired) return false;
  return true;
}

int FaultPlane::armed_remaining() const {
  std::lock_guard lock(m_);
  int n = 0;
  for (const auto& a : armed_)
    if (!a.fired) ++n;
  return n;
}

TriggerCounts FaultPlane::trigger_counts() const {
  std::lock_guard lock(m_);
  return counts_;
}

std::vector<FiredLoss> FaultPlane::fired_losses() const {
  std::lock_guard lock(m_);
  return fired_losses_;
}

std::uint64_t FaultPlane::pool_task_count(int device) const {
  std::lock_guard lock(m_);
  if (device < 0 || static_cast<std::size_t>(device) >= pool_counts_.size()) return 0;
  return pool_counts_[static_cast<std::size_t>(device)];
}

std::string strikes_json(const FaultPlane& plane) {
  // Injected values can be NaN/Inf by design — emit null for those so the
  // capsule stays valid JSON.
  const auto append_val = [](std::string& out, double v) {
    if (!std::isfinite(v)) {
      out += "null";
      return;
    }
    char num[40];
    std::snprintf(num, sizeof num, "%.17g", v);
    out += num;
  };
  std::string out = "{\"faults\":[";
  const std::vector<FiredFault> faults = plane.fired();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FiredFault& f = faults[i];
    if (i > 0) out += ',';
    out += "{\"when\":\"" + to_string(f.when) + "\",\"surface\":\"" + to_string(f.surface) +
           "\",\"kind\":\"" + to_string(f.kind) + "\"";
    out += ",\"row\":" + std::to_string(f.row) + ",\"col\":" + std::to_string(f.col);
    out += ",\"before\":";
    append_val(out, f.before);
    out += ",\"after\":";
    append_val(out, f.after);
    out += ",\"bit\":" + std::to_string(f.bit) +
           ",\"trigger_index\":" + std::to_string(f.trigger_index) + "}";
  }
  out += "],\"losses\":[";
  const std::vector<FiredLoss> losses = plane.fired_losses();
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const FiredLoss& l = losses[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"" + to_string(l.kind) + "\",\"device\":" + std::to_string(l.device) +
           ",\"trigger_index\":" + std::to_string(l.trigger_index) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace fth::fault

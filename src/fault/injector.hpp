// Soft-error (transient fault) injection.
//
// Implements the paper's failure model (Section IV-A): a matrix element
// silently changes value at a single point in time while the factorization
// continues obliviously. Faults are specified by *where* (Fig. 2(a) area or
// explicit coordinates) and *when* (iteration boundary, or the B/M/E
// moments of the Fig. 6 / Table II grids) and are applied by the driver at
// iteration boundaries.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fth::fault {

/// The matrix regions of Fig. 2(a), evaluated at an iteration boundary
/// where the next panel starts at column `i`.
enum class Area {
  Any = 0,            ///< anywhere in the matrix
  UpperTrailing = 1,  ///< Area 1: rows 0..i−1 of the trailing columns ≥ i
  LowerTrailing = 2,  ///< Area 2: rows ≥ i of the trailing columns ≥ i
  QPanel = 3,         ///< Area 3: Householder-vector storage (col c < i, row > c+1)
  FinishedH = 4,      ///< finished H entries (col c < i, row ≤ c+1) — beyond the paper's grid
};

/// When during the factorization the fault strikes (Fig. 6 / Table II).
enum class Moment {
  Beginning,  ///< after the first panel iteration
  Middle,     ///< after roughly half the iterations
  End,        ///< after the last blocked iteration
};

/// Classify a coordinate given the factorization progress (next panel
/// starts at column `i`).
Area classify(index_t row, index_t col, index_t i);

std::string to_string(Area a);
std::string to_string(Moment m);

/// How the struck element's value is corrupted. AddDelta is the paper's
/// additive model; the flip kinds corrupt the IEEE-754 bit pattern the way
/// a real transient upset does (a mantissa flip may be tiny, an exponent
/// flip enormous, and a targeted pattern can produce Inf or NaN).
enum class FaultKind {
  AddDelta,      ///< x += delta (the paper's Section IV-A model)
  BitFlip,       ///< flip one uniformly random bit of the 64-bit pattern
  SignFlip,      ///< flip bit 63
  ExponentFlip,  ///< flip one of bits 52..62
  MantissaFlip,  ///< flip one of bits 0..51
  QuietNaN,      ///< replace with a quiet NaN (all-ones exponent, payload set)
  Infinity,      ///< replace with ±Inf, keeping the sign
};

std::string to_string(FaultKind k);

/// Flip bit `bit` (0 = LSB of the mantissa, 63 = sign) of `x`'s IEEE-754
/// representation.
double flip_bit(double x, int bit);

/// Apply a corruption of kind `k` to `x`. `bit` selects the flipped bit
/// where relevant (< 0 draws uniformly from the kind's range using `rng`);
/// `delta` is the AddDelta payload.
double corrupt_value(double x, FaultKind k, int bit, double delta, Rng& rng);

/// One planned soft error.
struct FaultSpec {
  Area area = Area::LowerTrailing;  ///< region to strike (coordinates drawn at random)
  Moment moment = Moment::Middle;   ///< injection time when `boundary` < 0
  index_t boundary = -1;            ///< explicit boundary index (number of completed panels)
  index_t row = -1;                 ///< explicit coordinates override `area` when both ≥ 0
  index_t col = -1;
  double magnitude = 100.0;  ///< delta added to the element (× matrix scale if `relative`)
  bool relative = true;
  FaultKind kind = FaultKind::AddDelta;
  int bit = -1;  ///< explicit bit for the flip kinds (< 0 draws at random)
};

/// What actually happened for one fault.
struct InjectionRecord {
  index_t boundary = 0;
  index_t row = 0;
  index_t col = 0;
  double delta = 0.0;
  Area area = Area::Any;
  FaultKind kind = FaultKind::AddDelta;
};

/// A fault with resolved coordinates, ready to be applied by the driver.
struct PendingFault {
  index_t row = 0;
  index_t col = 0;
  double delta = 0.0;
  Area area = Area::Any;
  FaultKind kind = FaultKind::AddDelta;
  int bit = -1;  ///< resolved bit for flip kinds

  /// The corrupted value replacing `x` when this fault strikes.
  [[nodiscard]] double apply(double x) const;
};

/// Resolves fault specs into concrete injections as the factorization
/// advances. The driver calls `due()` at each iteration boundary and
/// applies the returned deltas to whichever memory holds each coordinate.
class Injector {
 public:
  Injector() = default;
  explicit Injector(std::vector<FaultSpec> specs, std::uint64_t seed = 0xFA57u);
  explicit Injector(const FaultSpec& spec, std::uint64_t seed = 0xFA57u);

  /// Faults scheduled for this boundary. `boundary` counts completed
  /// panels (1-based), `total_boundaries` is the total number of panel
  /// iterations, `i` is the next panel's start column, `n` the matrix
  /// size, and `scale` the magnitude reference for relative faults.
  std::vector<PendingFault> due(index_t boundary, index_t total_boundaries, index_t i,
                                index_t n, double scale);

  /// Record that a pending fault was applied (kept for reporting).
  void record(index_t boundary, const PendingFault& f);

  [[nodiscard]] const std::vector<InjectionRecord>& history() const { return history_; }
  [[nodiscard]] bool all_fired() const;

 private:
  struct Armed {
    FaultSpec spec;
    bool fired = false;
  };
  std::vector<Armed> armed_;
  std::vector<InjectionRecord> history_;
  Rng rng_{0xFA57u};
};

/// Map a Moment to a concrete boundary index given the total count.
index_t moment_boundary(Moment m, index_t total_boundaries);

}  // namespace fth::fault

#include "hybrid/hybrid_gehrd.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/blas1.hpp"
#include "la/blas3.hpp"
#include "hybrid/dev_blas.hpp"
#include "obs/trace.hpp"
#include "lapack/gehrd.hpp"
#include "lapack/lahr2_impl.hpp"
#include "lapack/orghr.hpp"
#include "lapack/reflectors.hpp"

namespace fth::hybrid {

void hybrid_gehrd(Device& dev, MatrixView<double> a, VectorView<double> tau,
                  const HybridGehrdOptions& opt, HybridGehrdStats* stats,
                  const IterationHook& hook) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "hybrid_gehrd: matrix must be square");
  FTH_CHECK(tau.size() >= std::max<index_t>(n - 1, 0), "hybrid_gehrd: tau too short");
  FTH_CHECK(opt.nb >= 1, "hybrid_gehrd: block size must be positive");

  obs::TraceSpan run_span("hybrid", "gehrd", "n", static_cast<double>(n));
  WallTimer total_timer;
  HybridGehrdStats local_stats;
  HybridGehrdStats& st = stats != nullptr ? *stats : local_stats;
  st = {};
  const detail::StatsScope scope(dev);

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);
  Stream& s = dev.stream();

  if (n > nx + 1) {
    // Device mirror of the matrix (Algorithm 2, line 1).
    DeviceMatrix<double> d_a(dev, n, n, "gehrd.d_a");
    copy_h2d(s, MatrixView<const double>(a), d_a.view());

    // Host-side workspaces.
    Matrix<double> t_host(nb, nb);
    Matrix<double> y_host(n, nb);
    // Device workspaces.
    DeviceMatrix<double> d_v(dev, n, nb, "gehrd.d_v");
    DeviceMatrix<double> d_t(dev, nb, nb, "gehrd.d_t");
    DeviceMatrix<double> d_y(dev, n, nb, "gehrd.d_y");
    DeviceMatrix<double> d_work(dev, n, nb, "gehrd.d_work");

    index_t i = 0;
    while (n - i > nx + 1) {
      const index_t ib = std::min(nb, n - i - 1);
      const index_t vrows = n - i - 1;

      // Line 3: bring the panel columns to the host (full height: the rows
      // above the reflectors already carry all updates from earlier
      // iterations on the device side).
      copy_d2h(s, d_a.block(0, i, n, ib), a.block(0, i, n, ib));

      // Line 4: host panel factorization; the big Y products run on the
      // device against the start-of-iteration trailing matrix.
      WallTimer panel_timer;
      {
        obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
        lapack::detail::lahr2_panel(
            a, i, ib, t_host.view(), y_host.view(), tau.sub(i, ib),
            [&](index_t j, VectorView<const double> vj, VectorView<double> y_col) {
              const index_t cj = i + j;
              // Ship the reflector vector, launch the device GEMV, fetch the
              // raw product back (the host applies the corrections).
              auto d_vcol = d_v.block(j, j, vj.size(), 1);
              copy_h2d_async(s, MatrixView<const double>(vj.data(), vj.size(), 1, vj.size()),
                             d_vcol);
              gemv_async(s, Trans::No, 1.0,
                         d_a.block(i + 1, cj + 1, vrows, n - cj - 1),
                         d_vcol.col(0), 0.0,
                         d_y.block(i + 1, j, vrows, 1).col(0));
              copy_d2h(s, d_y.block(i + 1, j, vrows, 1),
                       MatrixView<double>(y_col.data(), vrows, 1, vrows));
            });
      }
      st.panel_seconds += panel_timer.seconds();

      WallTimer update_timer;
      {
        obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
        // Ship the clean V (explicit unit diagonal), T, and the corrected
        // lower part of Y to the device.
        Matrix<double> v = lapack::materialize_v(MatrixView<const double>(a), i, ib);
        copy_h2d_async(s, v.cview(), d_v.block(0, 0, vrows, ib));
        copy_h2d_async(s, t_host.block(0, 0, ib, ib), d_t.block(0, 0, ib, ib));
        copy_h2d_async(s, y_host.block(0, 0, n, ib), d_y.block(0, 0, n, ib));

        // Top rows of Y on the device: Y(0:i+1,:) = A(0:i+1, i+1:n)·V·T.
        gemm_async(s, Trans::No, Trans::No, 1.0,
                   d_a.block(0, i + 1, i + 1, vrows),
                   d_v.block(0, 0, vrows, ib), 0.0,
                   d_y.block(0, 0, i + 1, ib));
        trmm_async(s, Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                   d_t.block(0, 0, ib, ib), d_y.block(0, 0, i + 1, ib));
        // The host needs those rows for the panel-column fix below; fetch
        // them asynchronously and overlap with the big right update.
        copy_d2h_async(s, d_y.block(0, 0, i + 1, ib),
                       y_host.block(0, 0, i + 1, ib));
        const Event y_upper_ready = s.record();

        // Line 7/8 right update (device): A(0:n, i+ib:n) −= Y·V2ᵀ where V2 is
        // the part of V whose rows correspond to columns i+ib..n−1.
        gemm_async(s, Trans::No, Trans::Yes, -1.0,
                   d_y.block(0, 0, n, ib),
                   d_v.block(ib - 1, 0, n - i - ib, ib),
                   1.0, d_a.block(0, i + ib, n, n - i - ib));

        // Left update (device): A(i+1:n, i+ib:n) := Hᵀ·A(i+1:n, i+ib:n).
        // Enqueued before the host panel fix below — it reads only
        // device-resident operands, so the host work overlaps BOTH big
        // updates instead of just the right one.
        larfb_left_async(s, Trans::Yes, d_v.block(0, 0, vrows, ib),
                         d_t.block(0, 0, ib, ib),
                         d_a.block(i + 1, i + ib, vrows, n - i - ib), d_work.view());

        // Host (overlapped with the device GEMM + larfb): finish the upper
        // rows of the panel columns, A(0:i+1, i+1:i+ib) −= Y·V1ᵀ. The wait
        // also retires the V/T/Y uploads, so the stack-local V staging
        // buffer may die at the end of this scope with no transfer live.
        y_upper_ready.wait();
        blas::trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit, 1.0,
                   MatrixView<const double>(a.block(i + 1, i, ib - 1, ib - 1)),
                   y_host.block(0, 0, i + 1, ib - 1));
        for (index_t j = 0; j + 1 < ib; ++j) {
          blas::axpy(-1.0, VectorView<const double>(y_host.block(0, j, i + 1, 1).col(0)),
                     a.block(0, i + 1 + j, i + 1, 1).col(0));
        }

        i += ib;
        ++st.panels;
        // No loop-bottom synchronize: the next iteration's synchronous
        // panel fetch is the real barrier, so the trailing updates keep
        // running under the host's loop bookkeeping (fth_analyze --perf
        // flagged the old barrier as coarse-synchronize).
      }
      st.update_seconds += update_timer.seconds();

      if (hook) {
        s.synchronize();  // host_view below needs an idle stream
        hook(IterationHookContext{.boundary = st.panels,
                                  .next_panel = i,
                                  .nb = nb,
                                  .host_a = a,
                                  .dev_a = host_view(d_a.view(), s)});
      }
    }

    // Fetch the remaining trailing columns and finish on the host.
    copy_d2h(s, d_a.block(0, i, n, n - i), a.block(0, i, n, n - i));

    WallTimer finish_timer;
    obs::TraceSpan finish_span("hybrid", "finish", "col", static_cast<double>(i));
    if (i + 1 < n) {
      std::vector<double> wbuf(static_cast<std::size_t>(n));
      VectorView<double> w(wbuf.data(), n);
      for (index_t c = i; c + 1 < n; ++c) {
        double alpha = a(c + 1, c);
        auto x = (c + 2 < n) ? a.col(c).sub(c + 2, n - c - 2) : VectorView<double>();
        lapack::larfg(alpha, x, tau[c]);
        const double ei = alpha;
        a(c + 1, c) = 1.0;
        VectorView<const double> v(a.block(c + 1, c, n - c - 1, 1).col(0).data(), n - c - 1, 1);
        lapack::larf(Side::Right, v, tau[c], a.block(0, c + 1, n, n - c - 1), w);
        lapack::larf(Side::Left, v, tau[c], a.block(c + 1, c + 1, n - c - 1, n - c - 1), w);
        a(c + 1, c) = ei;
      }
    }
    st.finish_seconds = finish_timer.seconds();
  } else {
    // Problem too small for the hybrid path: plain host reduction.
    WallTimer finish_timer;
    obs::TraceSpan finish_span("hybrid", "finish", "col", 0.0);
    lapack::gehd2(a, tau);
    st.finish_seconds = finish_timer.seconds();
  }

  st.total_seconds = total_timer.seconds();
  scope.finish(st);
}

}  // namespace fth::hybrid

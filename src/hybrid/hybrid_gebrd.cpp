#include "hybrid/hybrid_gebrd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "hybrid/dev_blas.hpp"
#include "obs/trace.hpp"
#include "lapack/gebrd.hpp"
#include "lapack/gebrd_impl.hpp"

namespace fth::hybrid {

void hybrid_gebrd(Device& dev, MatrixView<double> a, VectorView<double> d,
                  VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
                  const HybridGebrdOptions& opt, HybridGehrdStats* stats,
                  const IterationHook& hook) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "hybrid_gebrd: matrix must be square");
  FTH_CHECK(d.size() >= n && tauq.size() >= n, "hybrid_gebrd: d/tauq too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                taup.size() >= std::max<index_t>(n - 1, 0),
            "hybrid_gebrd: e/taup too short");
  FTH_CHECK(opt.nb >= 1, "hybrid_gebrd: block size must be positive");

  obs::TraceSpan run_span("hybrid", "gebrd", "n", static_cast<double>(n));
  WallTimer total_timer;
  HybridGehrdStats local_stats;
  HybridGehrdStats& st = stats != nullptr ? *stats : local_stats;
  st = {};
  const detail::StatsScope scope(dev);

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);
  Stream& s = dev.stream();

  index_t i = 0;
  if (n > nx + 1) {
    DeviceMatrix<double> d_a(dev, n, n, "gebrd.d_a");
    copy_h2d(s, MatrixView<const double>(a), d_a.view());

    Matrix<double> x_host(n, nb);
    Matrix<double> y_host(n, nb);
    DeviceMatrix<double> d_vec(dev, n, 1, "gebrd.d_vec");  // staging for v/u vectors
    DeviceMatrix<double> d_res(dev, n, 1, "gebrd.d_res");  // staging for the big products
    DeviceMatrix<double> d_v2(dev, n, nb, "gebrd.d_v2");
    DeviceMatrix<double> d_y2(dev, n, nb, "gebrd.d_y2");
    DeviceMatrix<double> d_x2(dev, n, nb, "gebrd.d_x2");
    DeviceMatrix<double> d_u2(dev, nb, n, "gebrd.d_u2");

    while (n - i > nx + 1) {
      const index_t ib = std::min(nb, n - i - 1);

      // Fetch the column panel (rows ≥ i only: the rows above belong to
      // finished data that lives on the host — P's Householder storage and
      // the superdiagonal — and the device copy of them is stale) AND the
      // row panel.
      WallTimer panel_timer;
      {
        obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
        copy_d2h_async(s, d_a.block(i, i, n - i, ib),
                       a.block(i, i, n - i, ib));
        copy_d2h(s, d_a.block(i, i + ib, ib, n - i - ib),
                 a.block(i, i + ib, ib, n - i - ib));

        lapack::detail::labrd_panel(
            a, i, ib, d.sub(i, ib), e.sub(i, ib), tauq.sub(i, ib), taup.sub(i, ib),
            x_host.view(), y_host.view(),
            [&](index_t j, VectorView<const double> v, VectorView<double> ycol) {
              const index_t cj = i + j;
              const index_t mlen = n - cj;
              const index_t nlen = n - cj - 1;
              copy_h2d_async(s, MatrixView<const double>(v.data(), mlen, 1, mlen),
                             d_vec.block(0, 0, mlen, 1));
              gemv_async(s, Trans::Yes, 1.0,
                         d_a.block(cj, cj + 1, mlen, nlen),
                         d_vec.view().col(0).sub(0, mlen), 0.0,
                         d_res.view().col(0).sub(0, nlen));
              copy_d2h(s, d_res.block(0, 0, nlen, 1),
                       MatrixView<double>(ycol.data(), nlen, 1, nlen));
            },
            [&](index_t j, VectorView<const double> u, VectorView<double> xcol) {
              const index_t cj = i + j;
              const index_t nlen = n - cj - 1;
              // u is a strided row view; stage it densely for the transfer.
              Matrix<double> dense(nlen, 1);
              for (index_t r = 0; r < nlen; ++r) dense(r, 0) = u[r];
              copy_h2d_async(s, dense.cview(), d_vec.block(0, 0, nlen, 1));
              gemv_async(s, Trans::No, 1.0,
                         d_a.block(cj + 1, cj + 1, nlen, nlen),
                         d_vec.view().col(0).sub(0, nlen), 0.0,
                         d_res.view().col(0).sub(0, nlen));
              copy_d2h(s, d_res.block(0, 0, nlen, 1),
                       MatrixView<double>(xcol.data(), nlen, 1, nlen));
            });
      }
      st.panel_seconds += panel_timer.seconds();

      WallTimer update_timer;
      {
        obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
        const index_t tn = n - i - ib;
        // Ship the four trailing-update operands (units are already in place
        // in the host panel data exactly as LAPACK leaves them).
        copy_h2d_async(s, MatrixView<const double>(a.block(i + ib, i, tn, ib)),
                       d_v2.block(0, 0, tn, ib));
        copy_h2d_async(s, MatrixView<const double>(y_host.block(i + ib, 0, tn, ib)),
                       d_y2.block(0, 0, tn, ib));
        copy_h2d_async(s, MatrixView<const double>(x_host.block(i + ib, 0, tn, ib)),
                       d_x2.block(0, 0, tn, ib));
        copy_h2d_async(s, MatrixView<const double>(a.block(i, i + ib, ib, tn)),
                       d_u2.block(0, 0, ib, tn));
        // The U2 transfer must observe the panel's unit entries; only after
        // it completes may the host put the pivot values back (the GEMMs
        // below still overlap with the host work).
        const Event operands_shipped = s.record();

        gemm_async(s, Trans::No, Trans::Yes, -1.0,
                   d_v2.block(0, 0, tn, ib),
                   d_y2.block(0, 0, tn, ib), 1.0,
                   d_a.block(i + ib, i + ib, tn, tn));
        gemm_async(s, Trans::No, Trans::No, -1.0,
                   d_x2.block(0, 0, tn, ib),
                   d_u2.block(0, 0, ib, tn), 1.0,
                   d_a.block(i + ib, i + ib, tn, tn));

        // Host bookkeeping overlapped with the device GEMMs: put the pivot
        // values back in place of the panel's units.
        operands_shipped.wait();
        for (index_t j = 0; j < ib; ++j) {
          a(i + j, i + j) = d[i + j];
          a(i + j, i + j + 1) = e[i + j];
        }
        // No loop-bottom synchronize: operands_shipped already retired the
        // four uploads, and the next iteration's synchronous per-column
        // panel fetches join the trailing GEMMs (fth_analyze --perf
        // flagged the old barrier as coarse-synchronize).
      }
      st.update_seconds += update_timer.seconds();

      i += ib;
      ++st.panels;
      if (hook) {
        s.synchronize();  // host_view below needs an idle stream
        hook(IterationHookContext{.boundary = st.panels,
                                  .next_panel = i,
                                  .nb = nb,
                                  .host_a = a,
                                  .dev_a = host_view(d_a.view(), s)});
      }
    }

    copy_d2h(s, d_a.block(i, i, n - i, n - i),
             a.block(i, i, n - i, n - i));
  }

  WallTimer finish_timer;
  {
    obs::TraceSpan finish_span("hybrid", "finish", "col", static_cast<double>(i));
    auto trail = a.block(i, i, n - i, n - i);
    lapack::gebd2(trail, d.sub(i, n - i),
                  (i < n - 1) ? e.sub(i, n - i - 1) : VectorView<double>(),
                  tauq.sub(i, n - i),
                  (i < n - 1) ? taup.sub(i, n - i - 1) : VectorView<double>());
  }
  st.finish_seconds = finish_timer.seconds();

  st.total_seconds = total_timer.seconds();
  scope.finish(st);
}

}  // namespace fth::hybrid

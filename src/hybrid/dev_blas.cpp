#include "hybrid/dev_blas.hpp"

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "lapack/reflectors.hpp"
#include "obs/trace.hpp"

namespace fth::hybrid {

void gemm_async(Stream& s, Trans ta, Trans tb, double alpha, MatrixView<const double> a,
                MatrixView<const double> b, double beta, MatrixView<double> c) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "gemm");
    blas::gemm(ta, tb, alpha, a, b, beta, c);
  });
}

void gemv_async(Stream& s, Trans trans, double alpha, MatrixView<const double> a,
                VectorView<const double> x, double beta, VectorView<double> y) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "gemv");
    blas::gemv(trans, alpha, a, x, beta, y);
  });
}

void trmm_async(Stream& s, Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                MatrixView<const double> a, MatrixView<double> b) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "trmm");
    blas::trmm(side, uplo, trans, diag, alpha, a, b);
  });
}

void scal_async(Stream& s, double alpha, VectorView<double> x) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "scal");
    blas::scal(alpha, x);
  });
}

void axpy_async(Stream& s, double alpha, VectorView<const double> x, VectorView<double> y) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "axpy");
    blas::axpy(alpha, x, y);
  });
}

void larfb_left_async(Stream& s, Trans trans, MatrixView<const double> v,
                      MatrixView<const double> t, MatrixView<double> c,
                      MatrixView<double> work) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "larfb");
    lapack::larfb(Side::Left, trans, Direction::Forward, StoreV::Columnwise, v, t, c, work);
  });
}

void symv_async(Stream& s, Uplo uplo, double alpha, MatrixView<const double> a,
                VectorView<const double> x, double beta, VectorView<double> y) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "symv");
    blas::symv(uplo, alpha, a, x, beta, y);
  });
}

void syr2k_async(Stream& s, Uplo uplo, Trans trans, double alpha, MatrixView<const double> a,
                 MatrixView<const double> b, double beta, MatrixView<double> c) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "syr2k");
    blas::syr2k(uplo, trans, alpha, a, b, beta, c);
  });
}

void fill_async(Stream& s, MatrixView<double> a, double value) {
  s.enqueue([=] {
    obs::TraceSpan span("dev_blas", "fill");
    fill(a, value);
  });
}

}  // namespace fth::hybrid

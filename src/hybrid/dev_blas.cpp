#include "hybrid/dev_blas.hpp"

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "lapack/reflectors.hpp"
#include "obs/trace.hpp"

namespace fth::hybrid {

void gemm_async(Stream& s, Trans ta, Trans tb, double alpha, DMatrixView<const double> a,
                DMatrixView<const double> b, double beta, DMatrixView<double> c) {
  s.enqueue("dev.gemm", FTH_TASK_EFFECTS(FTH_READS(a, b) FTH_WRITES(c)), [=] {
    obs::TraceSpan span("dev_blas", "gemm");
    blas::gemm(ta, tb, alpha, a.in_task(), b.in_task(), beta, c.in_task());
  });
}

void gemv_async(Stream& s, Trans trans, double alpha, DMatrixView<const double> a,
                DVectorView<const double> x, double beta, DVectorView<double> y) {
  s.enqueue("dev.gemv", FTH_TASK_EFFECTS(FTH_READS(a, x) FTH_WRITES(y)), [=] {
    obs::TraceSpan span("dev_blas", "gemv");
    blas::gemv(trans, alpha, a.in_task(), x.in_task(), beta, y.in_task());
  });
}

void trmm_async(Stream& s, Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                DMatrixView<const double> a, DMatrixView<double> b) {
  s.enqueue("dev.trmm", FTH_TASK_EFFECTS(FTH_READS(a) FTH_WRITES(b)), [=] {
    obs::TraceSpan span("dev_blas", "trmm");
    blas::trmm(side, uplo, trans, diag, alpha, a.in_task(), b.in_task());
  });
}

void scal_async(Stream& s, double alpha, DVectorView<double> x) {
  s.enqueue("dev.scal", FTH_TASK_EFFECTS(FTH_WRITES(x)), [=] {
    obs::TraceSpan span("dev_blas", "scal");
    blas::scal(alpha, x.in_task());
  });
}

void axpy_async(Stream& s, double alpha, DVectorView<const double> x, DVectorView<double> y) {
  s.enqueue("dev.axpy", FTH_TASK_EFFECTS(FTH_READS(x) FTH_WRITES(y)), [=] {
    obs::TraceSpan span("dev_blas", "axpy");
    blas::axpy(alpha, x.in_task(), y.in_task());
  });
}

void larfb_left_async(Stream& s, Trans trans, DMatrixView<const double> v,
                      DMatrixView<const double> t, DMatrixView<double> c,
                      DMatrixView<double> work) {
  s.enqueue("dev.larfb", FTH_TASK_EFFECTS(FTH_READS(v, t) FTH_WRITES(c, work)), [=] {
    obs::TraceSpan span("dev_blas", "larfb");
    lapack::larfb(Side::Left, trans, Direction::Forward, StoreV::Columnwise, v.in_task(),
                  t.in_task(), c.in_task(), work.in_task());
  });
}

void symv_async(Stream& s, Uplo uplo, double alpha, DMatrixView<const double> a,
                DVectorView<const double> x, double beta, DVectorView<double> y) {
  s.enqueue("dev.symv", FTH_TASK_EFFECTS(FTH_READS(a, x) FTH_WRITES(y)), [=] {
    obs::TraceSpan span("dev_blas", "symv");
    blas::symv(uplo, alpha, a.in_task(), x.in_task(), beta, y.in_task());
  });
}

void syr2k_async(Stream& s, Uplo uplo, Trans trans, double alpha, DMatrixView<const double> a,
                 DMatrixView<const double> b, double beta, DMatrixView<double> c) {
  s.enqueue("dev.syr2k", FTH_TASK_EFFECTS(FTH_READS(a, b) FTH_WRITES(c)), [=] {
    obs::TraceSpan span("dev_blas", "syr2k");
    blas::syr2k(uplo, trans, alpha, a.in_task(), b.in_task(), beta, c.in_task());
  });
}

void fill_async(Stream& s, DMatrixView<double> a, double value) {
  s.enqueue("dev.fill", FTH_TASK_EFFECTS(FTH_WRITES(a)), [=] {
    obs::TraceSpan span("dev_blas", "fill");
    fill(a.in_task(), value);
  });
}

}  // namespace fth::hybrid

// Software device: a separate, tracked memory space with its own streams.
//
// Stands in for the GPU of the paper's testbed (Table I). The algorithmic
// structure the paper depends on — two memory spaces, explicit asynchronous
// transfers, device-side BLAS, host/device overlap — is preserved; only
// the silicon is simulated. An optional cost model charges transfer time
// per byte so PCIe-bound behaviour can be studied.
//
// DeviceMatrix hands out *device-tagged* views (DMatrixView/DVectorView,
// see la/matrix.hpp): geometry-only handles host code cannot dereference.
// Stream tasks unwrap them with .in_task(); host code that legitimately
// needs the data after a synchronize() goes through hybrid::host_view().
// Allocations are registered with fth::check under a site label, and the
// async copy routines register every transfer with the happens-before race
// detector (check/access.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "check/access.hpp"
#include "common/error.hpp"
#include "la/matrix.hpp"
#include "hybrid/stream.hpp"

namespace fth::hybrid {

/// Direction of a host↔device transfer, as seen by a transfer hook.
enum class TransferDir { H2D, D2H };

/// Static description + cost model of a simulated device.
struct DeviceConfig {
  std::string name = "SoftDevice (simulated accelerator)";
  std::size_t memory_limit = 0;  ///< bytes; 0 means unlimited
  double h2d_gbps = 0.0;         ///< simulated H2D bandwidth; 0 = instantaneous
  double d2h_gbps = 0.0;         ///< simulated D2H bandwidth; 0 = instantaneous
  double latency_us = 0.0;       ///< per-transfer latency charged when a bandwidth is set
  /// Pool slot id (DevicePool). Becomes part of the memory-space identity:
  /// allocations are checker-registered under it, and fth::check flags a
  /// CrossDeviceAccess when a task on one ordinal unwraps another's memory.
  /// Single-device code keeps the default 0.
  int ordinal = 0;
};

/// A simulated accelerator: allocation arena + default stream + statistics.
class Device {
 public:
  explicit Device(DeviceConfig cfg = {});
  ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const noexcept { return cfg_; }

  /// Pool slot id (see DeviceConfig::ordinal).
  [[nodiscard]] int ordinal() const noexcept { return cfg_.ordinal; }

  /// Allocate `bytes` of device memory (throws std::bad_alloc on limit).
  /// `site` (a static or interned string) labels the allocation in checker
  /// reports — pass the owning buffer's name.
  [[nodiscard]] void* raw_allocate(std::size_t bytes, const char* site = "device");
  void raw_deallocate(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_.load(); }
  [[nodiscard]] std::size_t peak_bytes() const noexcept { return peak_.load(); }

  /// Transfer statistics (updated by the copy routines below).
  [[nodiscard]] std::uint64_t h2d_bytes() const noexcept { return h2d_bytes_.load(); }
  [[nodiscard]] std::uint64_t d2h_bytes() const noexcept { return d2h_bytes_.load(); }
  [[nodiscard]] std::uint64_t h2d_count() const noexcept { return h2d_count_.load(); }
  [[nodiscard]] std::uint64_t d2h_count() const noexcept { return d2h_count_.load(); }
  void reset_transfer_stats() noexcept;

  /// The device's default execution stream.
  [[nodiscard]] Stream& stream() noexcept { return *default_stream_; }

  // Internal: stat hooks used by the transfer routines.
  void note_h2d(std::size_t bytes) noexcept;
  void note_d2h(std::size_t bytes) noexcept;
  /// Sleep for the simulated duration of a `bytes`-sized transfer (no-op
  /// when the relevant bandwidth is 0).
  void charge_transfer(std::size_t bytes, bool h2d) const;

  /// Install a hook invoked inside each transfer task right after the copy
  /// completes, with the transfer direction and the *destination* view
  /// (device memory for H2D, host memory for D2H). Runs on the stream
  /// worker thread, so mutating the destination is race-free — the view is
  /// already unwrapped for task context. The fault plane uses this to
  /// corrupt data in flight. Pass nullptr to clear.
  using TransferHook = std::function<void(TransferDir, MatrixView<double>)>;
  void set_transfer_hook(TransferHook hook);
  /// Internal: invoke the installed hook (no-op when none). Called from
  /// transfer tasks on the worker thread.
  void call_transfer_hook(TransferDir dir, MatrixView<double> dst) const;

 private:
  DeviceConfig cfg_;
  mutable std::mutex hook_m_;
  std::shared_ptr<const TransferHook> transfer_hook_;
  std::atomic<std::size_t> in_use_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> h2d_bytes_{0};
  std::atomic<std::uint64_t> d2h_bytes_{0};
  std::atomic<std::uint64_t> h2d_count_{0};
  std::atomic<std::uint64_t> d2h_count_{0};
  std::unique_ptr<Stream> default_stream_;
};

/// RAII column-major matrix living in a device's memory space. `site`
/// names the buffer in checker reports ("gehrd.d_a", "ft.d_e", ...).
template <class T>
class DeviceMatrix {
 public:
  DeviceMatrix(Device& dev, index_t rows, index_t cols, const char* site = "device_matrix")
      : dev_(&dev), rows_(rows), cols_(cols), ld_(std::max<index_t>(1, rows)) {
    FTH_CHECK(rows >= 0 && cols >= 0, "device matrix dimensions must be non-negative");
    bytes_ = static_cast<std::size_t>(ld_) * static_cast<std::size_t>(cols_) * sizeof(T);
    data_ = static_cast<T*>(dev.raw_allocate(bytes_, site));
    std::fill_n(data_, static_cast<std::size_t>(ld_) * static_cast<std::size_t>(cols_), T{});
  }

  ~DeviceMatrix() {
    if (data_ != nullptr) dev_->raw_deallocate(data_, bytes_);
  }

  DeviceMatrix(DeviceMatrix&& other) noexcept { *this = std::move(other); }
  DeviceMatrix& operator=(DeviceMatrix&& other) noexcept {
    if (this != &other) {
      if (data_ != nullptr) dev_->raw_deallocate(data_, bytes_);
      dev_ = other.dev_;
      data_ = other.data_;
      rows_ = other.rows_;
      cols_ = other.cols_;
      ld_ = other.ld_;
      bytes_ = other.bytes_;
      other.data_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  DeviceMatrix(const DeviceMatrix&) = delete;
  DeviceMatrix& operator=(const DeviceMatrix&) = delete;

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] Device& device() const noexcept { return *dev_; }

  /// Device-tagged views: geometry-only on the host. Stream tasks unwrap
  /// with .in_task(); host code uses hybrid::host_view() after a sync.
  [[nodiscard]] DMatrixView<T> view() noexcept {
    return DMatrixView<T>(data_, rows_, cols_, ld_);
  }
  [[nodiscard]] DMatrixView<const T> view() const noexcept {
    return DMatrixView<const T>(data_, rows_, cols_, ld_);
  }
  [[nodiscard]] DMatrixView<T> block(index_t i, index_t j, index_t m, index_t n) noexcept {
    return view().block(i, j, m, n);
  }
  [[nodiscard]] DMatrixView<const T> block(index_t i, index_t j, index_t m,
                                           index_t n) const noexcept {
    return view().block(i, j, m, n);
  }

 private:
  Device* dev_ = nullptr;
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  std::size_t bytes_ = 0;
};

/// Checked host-side unwrap of a device view: legitimate only in the
/// host-exclusive window after the stream drained (synchronize() /
/// destructor), e.g. examples and benches reading results in place. The
/// checker flags a StreamNotIdle violation when the stream still has work.
template <class T>
[[nodiscard]] MatrixView<T> host_view(MatrixView<T, MemSpace::Device> dv, const Stream& s) {
  check::require_stream_idle(s.idle(), dv.raw_data(), "hybrid::host_view",
                             s.device() != nullptr ? s.device()->ordinal() : -1);
  return dv.unchecked_host_view();
}
template <class T>
[[nodiscard]] VectorView<T> host_view(VectorView<T, MemSpace::Device> dv, const Stream& s) {
  check::require_stream_idle(s.idle(), dv.raw_data(), "hybrid::host_view",
                             s.device() != nullptr ? s.device()->ordinal() : -1);
  return dv.unchecked_host_view();
}

/// Asynchronous host→device copy, enqueued on `s`.
void copy_h2d_async(Stream& s, MatrixView<const double> host, DMatrixView<double> dev);
/// Asynchronous device→host copy, enqueued on `s`.
void copy_d2h_async(Stream& s, DMatrixView<const double> dev, MatrixView<double> host);
/// Synchronous variants (enqueue + wait for completion). The (defaulted)
/// call site is forwarded to the synchronize, so the wait is attributed to
/// the caller rather than to device.cpp in profiles and DAG reports.
void copy_h2d(Stream& s, MatrixView<const double> host, DMatrixView<double> dev,
              std::source_location loc = std::source_location::current());
void copy_d2h(Stream& s, DMatrixView<const double> dev, MatrixView<double> host,
              std::source_location loc = std::source_location::current());

}  // namespace fth::hybrid

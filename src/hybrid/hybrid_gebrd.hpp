// Hybrid (host+device) blocked bidiagonal reduction — the MAGMA-style
// baseline for the third two-sided factorization (the SVD front end).
//
// Work split: the panel recurrences run on the host on both a column
// panel and a row panel (bidiagonalization reduces a column and a row per
// step, so both are fetched); the two large per-step products
// y = A_trailᵀ·v and x = A_trail·u and the two trailing GEMMs run on the
// device.
#pragma once

#include "la/matrix.hpp"
#include "hybrid/device.hpp"
#include "hybrid/hybrid_gehrd.hpp"  // HybridGehrdStats, IterationHook

namespace fth::hybrid {

struct HybridGebrdOptions {
  index_t nb = 32;
  index_t nx = 64;
};

/// Reduce the square matrix `a` to upper bidiagonal form using `dev`.
/// Same output contract as lapack::gebrd.
void hybrid_gebrd(Device& dev, MatrixView<double> a, VectorView<double> d,
                  VectorView<double> e, VectorView<double> tauq, VectorView<double> taup,
                  const HybridGebrdOptions& opt = {}, HybridGehrdStats* stats = nullptr,
                  const IterationHook& hook = {});

}  // namespace fth::hybrid

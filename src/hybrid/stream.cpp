#include "hybrid/stream.hpp"

#include <atomic>
#include <cstring>

#include "check/access.hpp"
#include "hybrid/device.hpp"
#include "common/error.hpp"
#include "obs/dag.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace fth::hybrid {

namespace {

/// DAG identities are never reused, unlike `this` pointers (see obs_id()).
std::atomic<std::uint64_t> g_next_stream_obs_id{1};

/// Report the happens-before edge an observed-complete event implies.
/// From a host thread it is a host-ordering (retires in-flight transfers
/// up to the recording ticket); from a stream worker (wait_event task) it
/// is a cross-stream edge that resolves once the host orders the waiter.
void note_event_observed(const void* stream, std::uint64_t ticket) {
  if (stream == nullptr) return;
  if (check::in_task_context())
    check::on_cross_stream_wait(check::current_stream(), check::current_ticket(),
                                stream, ticket);
  else
    check::on_host_ordered(stream, ticket);
}

}  // namespace

bool Event::ready() const {
  if (!state_) return true;  // default-constructed event is trivially ready
  bool done = false;
  {
    std::lock_guard lock(state_->m);
    done = state_->done;
  }
  if (done) note_event_observed(state_->stream, state_->ticket);
  return done;
}

void Event::wait(std::source_location loc) const {
  if (!state_) return;
  // Per-site span name ("event_wait@file:line") when any sink is live: the
  // profiler splits its wait phases by site, and the DAG recorder needs the
  // site for blocking-edge attribution.
  const char* site = obs::trace_enabled()
                         ? obs::site_label("event_wait", loc.file_name(),
                                           static_cast<unsigned>(loc.line()))
                         : nullptr;
  obs::dag::detail::on_wait_begin("event_wait", site != nullptr ? site : "",
                                  state_->stream_obs_id, state_->ticket);
  {
    obs::TraceSpan span("stream", site != nullptr ? site : "event_wait");
    std::unique_lock lock(state_->m);
    state_->cv.wait(lock, [&] { return state_->done; });
  }
  obs::dag::detail::on_wait_end();
  note_event_observed(state_->stream, state_->ticket);
}

bool Event::wait_for(std::chrono::nanoseconds timeout, std::source_location loc) const {
  if (!state_) return true;
  const char* site = obs::trace_enabled()
                         ? obs::site_label("event_wait", loc.file_name(),
                                           static_cast<unsigned>(loc.line()))
                         : nullptr;
  obs::dag::detail::on_wait_begin("event_wait", site != nullptr ? site : "",
                                  state_->stream_obs_id, state_->ticket);
  bool done = false;
  {
    obs::TraceSpan span("stream", site != nullptr ? site : "event_wait");
    std::unique_lock lock(state_->m);
    done = state_->cv.wait_for(lock, timeout, [&] { return state_->done; });
  }
  obs::dag::detail::on_wait_end();
  // A timed-out wait observed nothing: no happens-before edge, transfers
  // covered by this event stay in flight (the race detector stays sound
  // when the caller takes the loss-detection branch).
  if (done) note_event_observed(state_->stream, state_->ticket);
  return done;
}

Stream::Stream(Device* device)
    : device_(device),
      obs_id_(g_next_stream_obs_id.fetch_add(1, std::memory_order_relaxed)),
      worker_([this] { worker_loop(); }) {}

Stream::~Stream() {
  {
    std::lock_guard lock(m_);
    stop_ = true;
  }
  cv_worker_.notify_all();
  worker_.join();
  // Joining the drained worker is a host-side ordering of the whole stream.
  check::on_stream_destroyed(this, next_ticket_ - 1);
}

std::uint64_t Stream::enqueue(const char* label, std::function<void()> task) {
  Task t;
  t.fn = std::move(task);
  t.label = label != nullptr ? label : "task";
  return enqueue_task(std::move(t));
}

std::uint64_t Stream::enqueue(const char* label, check::TaskEffects effects,
                              std::function<void()> task) {
  Task t;
  t.fn = std::move(task);
  t.label = label != nullptr ? label : "task";
#if FTH_CHECK_ENABLED
  t.effects = effects;
  t.has_effects = true;
#else
  (void)effects;  // declarations evaporate in Release (empty TaskEffects)
#endif
  return enqueue_task(std::move(t));
}

std::uint64_t Stream::enqueue_task(Task&& t) {
  FTH_CHECK(t.fn != nullptr, "stream task must be callable");
  const char* label = t.label;
  std::uint64_t ticket = 0;
  {
    std::lock_guard lock(m_);
    ticket = next_ticket_++;
    t.ticket = ticket;
    queue_.push_back(std::move(t));
    const std::uint64_t depth = queue_.size() + (busy_ ? 1 : 0);
    if (depth > peak_depth_) peak_depth_ = depth;
    obs::counter("stream.queue_depth", static_cast<double>(depth));
  }
  obs::dag::detail::on_enqueue(obs_id_, ticket, label);
  cv_worker_.notify_one();
  return ticket;
}

void Stream::synchronize(std::source_location loc) {
  const char* site = obs::trace_enabled()
                         ? obs::site_label("synchronize", loc.file_name(),
                                           static_cast<unsigned>(loc.line()))
                         : nullptr;
  std::uint64_t tail = 0;
  {
    std::unique_lock lock(m_);
    // The wait's cause is the newest ticket at entry (same value on exit:
    // the hybrid drivers are single-host-threaded). Recorded even when the
    // queue is already drained — a zero-duration Wait node keeps the DAG's
    // node counts deterministic.
    tail = next_ticket_ - 1;
    obs::dag::detail::on_wait_begin("synchronize", site != nullptr ? site : "", obs_id_, tail);
    if (!queue_.empty() || busy_) {
      obs::TraceSpan span("stream", site != nullptr ? site : "synchronize");
      cv_idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
    }
    obs::dag::detail::on_wait_end();
  }
  check::on_host_ordered(this, tail);
  std::lock_guard lock(m_);
  if (pending_error_) {
    const std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

Event Stream::record() {
  Event e;
  e.state_ = std::make_shared<Event::State>();
  auto state = e.state_;
  // Pure marker: touches no matrix memory, so it declares the empty set.
  const std::uint64_t ticket = enqueue("event_record", FTH_TASK_EFFECTS(), [state] {
    {
      std::lock_guard lock(state->m);
      state->done = true;
    }
    state->cv.notify_all();
  });
  // Nobody else can observe the Event before record() returns, so filling
  // in the checker identity after the enqueue is race-free (the marker
  // task itself never reads these fields).
  state->stream = this;
  state->ticket = ticket;
  state->stream_obs_id = obs_id_;
  return e;
}

void Stream::wait_event(const Event& e) {
  // Not labeled "event_wait": that name means a *host* wait to the profiler;
  // the worker stalling on a cross-stream event is device-busy time.
  enqueue("dev.wait_event", FTH_TASK_EFFECTS(), [e] { e.wait(); });
}

bool Stream::idle() const {
  std::lock_guard lock(m_);
  return queue_.empty() && !busy_;
}

std::uint64_t Stream::tail_ticket() const {
  std::lock_guard lock(m_);
  return next_ticket_ - 1;
}

std::uint64_t Stream::tasks_executed() const {
  std::lock_guard lock(m_);
  return executed_;
}

std::uint64_t Stream::peak_queue_depth() const {
  std::lock_guard lock(m_);
  return peak_depth_;
}

void Stream::reset_peak_queue_depth() {
  std::lock_guard lock(m_);
  peak_depth_ = queue_.size() + (busy_ ? 1 : 0);
}

void Stream::set_task_hook(std::function<void(std::uint64_t)> hook) {
  std::lock_guard lock(m_);
  task_hook_ = std::move(hook);
}

void Stream::kill() {
  {
    std::lock_guard lock(m_);
    if (dead_) return;
    dead_ = true;
  }
  cv_worker_.notify_all();
}

bool Stream::killed() const {
  std::lock_guard lock(m_);
  return dead_;
}

void Stream::worker_loop() {
  obs::set_thread_name("device-stream");
  const int dev_ordinal = device_ != nullptr ? device_->ordinal() : -1;
  obs::profile_detail::set_device_ordinal(dev_ordinal);
  for (;;) {
    Task task;
    bool dead = false;
    {
      std::unique_lock lock(m_);
      cv_worker_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
      dead = dead_;
    }
    // A killed stream discards work instead of running it, but still
    // completes event_record markers so host waits observe doom instead of
    // hanging (see kill()).
    const bool run_task = !dead || std::strcmp(task.label, "event_record") == 0;
    obs::dag::detail::on_task_begin(obs_id_, task.ticket, task.label);
    if (run_task) {
      try {
        obs::TraceSpan span("stream", task.label);
#if FTH_CHECK_ENABLED
        check::TaskScope scope(this, task.label, task.ticket,
                               task.has_effects ? &task.effects : nullptr,
                               dev_ordinal);
#else
        check::TaskScope scope(this, task.label, task.ticket, nullptr, dev_ordinal);
#endif
        task.fn();
      } catch (...) {
        std::lock_guard lock(m_);
        // Keep only the first error; later tasks still run (matching the
        // "stream keeps executing" semantics of real runtimes).
        if (!pending_error_) pending_error_ = std::current_exception();
      }
    }
    obs::dag::detail::on_task_end(obs_id_, task.ticket);
    std::function<void(std::uint64_t)> hook;
    std::uint64_t task_index;
    {
      std::lock_guard lock(m_);
      hook = task_hook_;
      task_index = executed_;
    }
    if (hook && !dead) {
      // Invoked between tasks, so the hook owns the device memory for the
      // duration of the call — same discipline as a task body.
      try {
        check::TaskScope scope(this, "task_hook", task.ticket, nullptr, dev_ordinal);
        hook(task_index);
      } catch (...) {
        std::lock_guard lock(m_);
        if (!pending_error_) pending_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lock(m_);
      busy_ = false;
      ++executed_;
      obs::counter("stream.queue_depth", static_cast<double>(queue_.size()));
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace fth::hybrid

#include "hybrid/stream.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace fth::hybrid {

bool Event::ready() const {
  if (!state_) return true;  // default-constructed event is trivially ready
  std::lock_guard lock(state_->m);
  return state_->done;
}

void Event::wait() const {
  if (!state_) return;
  obs::TraceSpan span("stream", "event_wait");
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
}

Stream::Stream(Device* device) : device_(device), worker_([this] { worker_loop(); }) {}

Stream::~Stream() {
  {
    std::lock_guard lock(m_);
    stop_ = true;
  }
  cv_worker_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> task) {
  FTH_CHECK(task != nullptr, "stream task must be callable");
  {
    std::lock_guard lock(m_);
    queue_.push_back(std::move(task));
    const std::uint64_t depth = queue_.size() + (busy_ ? 1 : 0);
    if (depth > peak_depth_) peak_depth_ = depth;
    obs::counter("stream.queue_depth", static_cast<double>(depth));
  }
  cv_worker_.notify_one();
}

void Stream::synchronize() {
  std::unique_lock lock(m_);
  if (!queue_.empty() || busy_) {
    obs::TraceSpan span("stream", "synchronize");
    cv_idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
  }
  if (pending_error_) {
    const std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

Event Stream::record() {
  Event e;
  e.state_ = std::make_shared<Event::State>();
  auto state = e.state_;
  enqueue([state] {
    {
      std::lock_guard lock(state->m);
      state->done = true;
    }
    state->cv.notify_all();
  });
  return e;
}

void Stream::wait_event(const Event& e) {
  enqueue([e] { e.wait(); });
}

std::uint64_t Stream::tasks_executed() const {
  std::lock_guard lock(m_);
  return executed_;
}

std::uint64_t Stream::peak_queue_depth() const {
  std::lock_guard lock(m_);
  return peak_depth_;
}

void Stream::reset_peak_queue_depth() {
  std::lock_guard lock(m_);
  peak_depth_ = queue_.size() + (busy_ ? 1 : 0);
}

void Stream::set_task_hook(std::function<void(std::uint64_t)> hook) {
  std::lock_guard lock(m_);
  task_hook_ = std::move(hook);
}

void Stream::worker_loop() {
  obs::set_thread_name("device-stream");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(m_);
      cv_worker_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      obs::TraceSpan span("stream", "task");
      task();
    } catch (...) {
      std::lock_guard lock(m_);
      // Keep only the first error; later tasks still run (matching the
      // "stream keeps executing" semantics of real runtimes).
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    std::function<void(std::uint64_t)> hook;
    std::uint64_t task_index;
    {
      std::lock_guard lock(m_);
      hook = task_hook_;
      task_index = executed_;
    }
    if (hook) {
      // Invoked between tasks, so the hook owns the device memory for the
      // duration of the call — same discipline as a task body.
      try {
        hook(task_index);
      } catch (...) {
        std::lock_guard lock(m_);
        if (!pending_error_) pending_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard lock(m_);
      busy_ = false;
      ++executed_;
      obs::counter("stream.queue_depth", static_cast<double>(queue_.size()));
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace fth::hybrid

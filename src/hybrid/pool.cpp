#include "hybrid/pool.hpp"

#include <string>

#include "common/error.hpp"

namespace fth::hybrid {

DevicePool::DevicePool(PoolConfig cfg) {
  FTH_CHECK(cfg.devices >= 1, "a device pool needs at least one device");
  devs_.reserve(static_cast<std::size_t>(cfg.devices));
  for (int d = 0; d < cfg.devices; ++d) {
    DeviceConfig dc = cfg.device;
    dc.ordinal = d;
    dc.name = cfg.device.name + " #" + std::to_string(d);
    devs_.push_back(std::make_unique<Device>(std::move(dc)));
  }
}

}  // namespace fth::hybrid

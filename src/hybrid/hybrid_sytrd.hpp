// Hybrid (host+device) blocked symmetric tridiagonal reduction — the
// MAGMA-style baseline for the second two-sided factorization, with the
// same work split as hybrid_gehrd: panel recurrences on the host, the
// large symmetric matrix-vector products and the rank-2k trailing update
// on the device.
#pragma once

#include "la/matrix.hpp"
#include "hybrid/device.hpp"
#include "hybrid/hybrid_gehrd.hpp"  // HybridGehrdStats, IterationHook

namespace fth::hybrid {

struct HybridSytrdOptions {
  index_t nb = 32;  ///< panel width
  index_t nx = 64;  ///< crossover to the host unblocked finish
};

/// Reduce the symmetric matrix `a` (lower triangle authoritative) to
/// tridiagonal form using `dev`. Same output contract as lapack::sytrd.
/// The hook fires at each iteration boundary (stream synchronized).
void hybrid_sytrd(Device& dev, MatrixView<double> a, VectorView<double> d,
                  VectorView<double> e, VectorView<double> tau,
                  const HybridSytrdOptions& opt = {}, HybridGehrdStats* stats = nullptr,
                  const IterationHook& hook = {});

}  // namespace fth::hybrid

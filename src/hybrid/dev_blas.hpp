// Device BLAS: asynchronous kernel launches on a stream.
//
// Counterparts of the cuBLAS calls the MAGMA Hessenberg path issues. Each
// call enqueues the kernel and returns immediately; all operand views are
// device-tagged (DMatrixView/DVectorView) and must reference device memory
// that stays alive until the stream drains. The kernels unwrap their
// operands with .in_task() on the worker thread, so a stale view (backing
// DeviceMatrix freed before the stream drained) is reported by fth::check.
#pragma once

#include "la/matrix.hpp"
#include "hybrid/stream.hpp"

namespace fth::hybrid {

void gemm_async(Stream& s, Trans ta, Trans tb, double alpha, DMatrixView<const double> a,
                DMatrixView<const double> b, double beta, DMatrixView<double> c);

void gemv_async(Stream& s, Trans trans, double alpha, DMatrixView<const double> a,
                DVectorView<const double> x, double beta, DVectorView<double> y);

void trmm_async(Stream& s, Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                DMatrixView<const double> a, DMatrixView<double> b);

void scal_async(Stream& s, double alpha, DVectorView<double> x);

void axpy_async(Stream& s, double alpha, DVectorView<const double> x, DVectorView<double> y);

/// Apply the block reflector H = I − V·T·Vᵀ (or Hᵀ) from the left to C on
/// the device. `work` is device scratch of at least C.cols()×V.cols().
void larfb_left_async(Stream& s, Trans trans, DMatrixView<const double> v,
                      DMatrixView<const double> t, DMatrixView<double> c,
                      DMatrixView<double> work);

void symv_async(Stream& s, Uplo uplo, double alpha, DMatrixView<const double> a,
                DVectorView<const double> x, double beta, DVectorView<double> y);

void syr2k_async(Stream& s, Uplo uplo, Trans trans, double alpha, DMatrixView<const double> a,
                 DMatrixView<const double> b, double beta, DMatrixView<double> c);

/// Fill a device view with a constant.
void fill_async(Stream& s, DMatrixView<double> a, double value);

}  // namespace fth::hybrid

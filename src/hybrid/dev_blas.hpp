// Device BLAS: asynchronous kernel launches on a stream.
//
// Counterparts of the cuBLAS calls the MAGMA Hessenberg path issues. Each
// call enqueues the kernel and returns immediately; all operand views must
// reference device memory that stays alive until the stream drains.
#pragma once

#include "la/matrix.hpp"
#include "hybrid/stream.hpp"

namespace fth::hybrid {

void gemm_async(Stream& s, Trans ta, Trans tb, double alpha, MatrixView<const double> a,
                MatrixView<const double> b, double beta, MatrixView<double> c);

void gemv_async(Stream& s, Trans trans, double alpha, MatrixView<const double> a,
                VectorView<const double> x, double beta, VectorView<double> y);

void trmm_async(Stream& s, Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                MatrixView<const double> a, MatrixView<double> b);

void scal_async(Stream& s, double alpha, VectorView<double> x);

void axpy_async(Stream& s, double alpha, VectorView<const double> x, VectorView<double> y);

/// Apply the block reflector H = I − V·T·Vᵀ (or Hᵀ) from the left to C on
/// the device. `work` is device scratch of at least C.cols()×V.cols().
void larfb_left_async(Stream& s, Trans trans, MatrixView<const double> v,
                      MatrixView<const double> t, MatrixView<double> c,
                      MatrixView<double> work);

void symv_async(Stream& s, Uplo uplo, double alpha, MatrixView<const double> a,
                VectorView<const double> x, double beta, VectorView<double> y);

void syr2k_async(Stream& s, Uplo uplo, Trans trans, double alpha, MatrixView<const double> a,
                 MatrixView<const double> b, double beta, MatrixView<double> c);

/// Fill a device view with a constant.
void fill_async(Stream& s, MatrixView<double> a, double value);

}  // namespace fth::hybrid

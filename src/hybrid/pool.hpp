// DevicePool: D independent simulated devices (DESIGN.md §13).
//
// Each pool member is a full hybrid::Device — its own worker thread,
// tracked memory arena, and default stream — tagged with a pool ordinal
// that becomes part of its memory-space identity: fth::check flags a task
// on one ordinal unwrapping another ordinal's memory (CrossDeviceAccess),
// so shards can only meet through the host or an explicit transfer.
// Cross-device ordering uses the ordinary Event machinery: record() on the
// producer's stream, wait_event() on the consumer's.
//
// The pool also owns the loss ledger the device-loss recovery protocol
// (ft::pool_gehrd) builds on: mark_lost() quarantines a member by killing
// its stream (queued work discarded, pending Events doomed so host waits
// return — Stream::kill), and lost()/lost_count() report the state.
#pragma once

#include <memory>
#include <vector>

#include "hybrid/device.hpp"

namespace fth::hybrid {

/// Shape of a pool: how many devices, and the per-member cost model.
struct PoolConfig {
  int devices = 1;      ///< D ≥ 1; member ordinals are 0..D-1
  DeviceConfig device;  ///< template; name/ordinal are overwritten per slot
};

class DevicePool {
 public:
  explicit DevicePool(PoolConfig cfg = {});

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(devs_.size()); }

  [[nodiscard]] Device& device(int d) { return *devs_.at(static_cast<std::size_t>(d)); }
  [[nodiscard]] Stream& stream(int d) { return device(d).stream(); }

  /// Quarantine a member declared lost: kills its stream (see Stream::kill
  /// doom semantics). Idempotent. The member's memory stays allocated — a
  /// poisoned device's bytes are still addressable, just untrusted.
  void mark_lost(int d) { stream(d).kill(); }

  [[nodiscard]] bool lost(int d) { return stream(d).killed(); }

  [[nodiscard]] int lost_count() {
    int n = 0;
    for (int d = 0; d < size(); ++d)
      if (lost(d)) ++n;
    return n;
  }

 private:
  std::vector<std::unique_ptr<Device>> devs_;
};

}  // namespace fth::hybrid

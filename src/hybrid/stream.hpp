// Execution stream: an in-order FIFO of tasks run by a worker thread.
//
// This mirrors the CUDA stream model the MAGMA hybrid algorithms are built
// on: work is enqueued asynchronously, executes in order on the device,
// and the host synchronizes explicitly via synchronize() or events. The
// fault-tolerant Hessenberg driver relies on this to overlap host-side
// checksum work with device-side trailing-matrix updates exactly as the
// paper's Algorithm 3 does.
//
// Every task carries a label and a monotonically increasing ticket; both
// feed fth::check (see check/access.hpp): the worker runs each task inside
// a check::TaskScope (so device-view unwraps via .in_task() validate), and
// Event::wait / Event::ready() / synchronize() report the happens-before
// edges the host observes, which is what retires in-flight transfers in
// the race detector.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <source_location>
#include <thread>

#include "check/effects.hpp"

namespace fth::hybrid {

class Device;

/// A host-visible marker of a point in a stream's task sequence.
class Event {
 public:
  Event() = default;

  /// True once every task enqueued before the recording has finished.
  /// Observing true from a host thread is a happens-before edge: it
  /// retires transfers enqueued at or before the recording ticket.
  [[nodiscard]] bool ready() const;

  /// Block the calling thread until ready(). The (defaulted) call site
  /// names the wait in traces, the profiler, and the DAG recorder's
  /// blocking-edge attribution.
  void wait(std::source_location loc = std::source_location::current()) const;

  /// Bounded wait: returns true once ready() (recording the same
  /// happens-before edge as wait()), false on timeout — in which case NO
  /// edge is recorded and in-flight transfers stay live. The device-loss
  /// detection protocol (DESIGN.md §13) is built on this: a false return
  /// is the health-check timeout that declares a device lost.
  [[nodiscard]] bool wait_for(
      std::chrono::nanoseconds timeout,
      std::source_location loc = std::source_location::current()) const;

 private:
  friend class Stream;
  struct State {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    const void* stream = nullptr;     ///< recording stream (checker identity)
    std::uint64_t ticket = 0;         ///< ticket of the recording marker task
    std::uint64_t stream_obs_id = 0;  ///< recording stream's DAG identity
  };
  std::shared_ptr<State> state_;
};

/// In-order asynchronous work queue executed by a dedicated worker thread.
class Stream {
 public:
  /// `device` (may be null) is used for transfer statistics / cost model.
  explicit Stream(Device* device = nullptr);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue a task; returns its ticket immediately. Tasks run strictly
  /// in order. `label` must be a static or interned string; it names the
  /// task in checker reports and traces.
  std::uint64_t enqueue(const char* label, std::function<void()> task);
  std::uint64_t enqueue(std::function<void()> task) {
    return enqueue("task", std::move(task));
  }

  /// Enqueue with a declared effect set (check/effects.hpp): the
  /// FTH_TASK_EFFECTS declaration travels with the task and is installed
  /// in its TaskScope, so FTH_CHECK_EFFECTS=1 runs validate every device
  /// unwrap against it. tools/fth_analyze requires this overload for every
  /// enqueue in src/hybrid/ and src/ft/ (rule `undeclared-task`).
  std::uint64_t enqueue(const char* label, check::TaskEffects effects,
                        std::function<void()> task);

  /// Block until every enqueued task has completed. Rethrows the first
  /// exception thrown by any task since the last synchronize(). The
  /// (defaulted) call site names the wait in traces/profiles and in the
  /// DAG recorder's blocking-edge attribution.
  void synchronize(std::source_location loc = std::source_location::current());

  /// Record an event at the current tail of the queue.
  [[nodiscard]] Event record();

  /// Make this stream wait (asynchronously) until `e` is ready before
  /// running subsequently enqueued tasks.
  void wait_event(const Event& e);

  /// True when no task is queued or executing. (A snapshot: another thread
  /// may enqueue immediately after. The hybrid drivers are single-host-
  /// threaded, so the gate hybrid::host_view builds on this is sound.)
  [[nodiscard]] bool idle() const;

  /// Ticket of the most recently enqueued task (0 if none yet).
  [[nodiscard]] std::uint64_t tail_ticket() const;

  /// Device this stream belongs to (may be null for a free-standing stream).
  [[nodiscard]] Device* device() const noexcept { return device_; }

  /// Process-unique stream identity for the DAG recorder. Stable across the
  /// stream's life and never reused (unlike `this`, which the allocator may
  /// recycle across sequentially constructed Devices).
  [[nodiscard]] std::uint64_t obs_id() const noexcept { return obs_id_; }

  /// Number of tasks executed over the stream's lifetime.
  [[nodiscard]] std::uint64_t tasks_executed() const;

  /// Deepest backlog observed (tasks queued + the one executing) since
  /// construction or the last reset_peak_queue_depth(). A proxy for how
  /// far ahead of the device the host got — the overlap the hybrid
  /// algorithms live on.
  [[nodiscard]] std::uint64_t peak_queue_depth() const;
  void reset_peak_queue_depth();

  /// Declare the simulated device behind this stream dead (hard-death
  /// strike, or quarantine after loss detection). Queued and future tasks
  /// are discarded without running — except "event_record" markers, which
  /// still complete so host Event waits on a dead stream return instead of
  /// hanging (doom semantics, like a real runtime erroring-out pending
  /// events). The task currently executing finishes; the worker thread
  /// stays alive to drain the queue and the destructor joins as usual.
  void kill();

  /// True once kill() ran. Fault-plane stall hooks poll this so a blocked
  /// silent-stall unwinds when the driver quarantines the device.
  [[nodiscard]] bool killed() const;

  /// Install a hook invoked on the worker thread after each task finishes
  /// (argument: the task's lifetime index). Because it runs between tasks,
  /// the hook may touch device memory without racing the task sequence —
  /// the fault plane uses this to land in-flight corruptions. Pass nullptr
  /// to clear. A hook that throws is treated like a failing task.
  void set_task_hook(std::function<void(std::uint64_t)> hook);

 private:
  struct Task {
    std::function<void()> fn;
    const char* label = "task";
    std::uint64_t ticket = 0;
#if FTH_CHECK_ENABLED
    check::TaskEffects effects;  ///< declared set; meaningful iff has_effects
    bool has_effects = false;
#endif
  };

  std::uint64_t enqueue_task(Task&& t);
  void worker_loop();

  Device* device_;
  const std::uint64_t obs_id_;  // initialized before worker_ starts
  mutable std::mutex m_;
  std::condition_variable cv_worker_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  std::function<void(std::uint64_t)> task_hook_;
  std::exception_ptr pending_error_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t peak_depth_ = 0;
  bool busy_ = false;
  bool stop_ = false;
  bool dead_ = false;  ///< kill() ran; see doom semantics above
  std::thread worker_;
};

}  // namespace fth::hybrid

// Hybrid (host+device) blocked Hessenberg reduction — Algorithm 2 of the
// paper, the MAGMA-style baseline the fault-tolerant algorithm builds on.
//
// Work split, as in MAGMA:
//  * panel factorization on the host (CPU),
//  * the large per-column products Y(:,j) = A_trail·v as device kernels,
//  * trailing-matrix right/left block updates as device GEMMs,
//  * finalized panel columns transferred back asynchronously, overlapped
//    with the device updates.
// On completion the host matrix holds the LAPACK-layout factored result.
#pragma once

#include "la/matrix.hpp"
#include "hybrid/device.hpp"

namespace fth::hybrid {

struct HybridGehrdOptions {
  index_t nb = 32;   ///< panel width
  index_t nx = 128;  ///< crossover to the host unblocked finish
};

/// State handed to an iteration-boundary hook. The stream is synchronized
/// when the hook runs, so both views may be touched directly. Used by the
/// fault-injection studies (Fig. 2) to corrupt elements mid-factorization.
struct IterationHookContext {
  index_t boundary = 0;       ///< number of panels completed so far
  index_t next_panel = 0;     ///< start column of the next panel (== n when done)
  index_t nb = 0;             ///< panel width in use
  MatrixView<double> host_a;  ///< host matrix (finished columns + stale trailing)
  MatrixView<double> dev_a;   ///< device matrix (live trailing data)
};

/// Called between iterations (after each panel's updates complete, before
/// the next panel transfer), and once more after the final boundary.
using IterationHook = std::function<void(const IterationHookContext&)>;

/// Wall-clock decomposition of one run (for the overhead studies), plus
/// the run's transfer/memory/overlap footprint pulled up from the Device
/// and Stream so callers need not reach into device internals.
struct HybridGehrdStats {
  double total_seconds = 0.0;
  double panel_seconds = 0.0;    ///< host panel factorization (incl. device Y gemv waits)
  double update_seconds = 0.0;   ///< device trailing updates (host-observed)
  double finish_seconds = 0.0;   ///< host unblocked tail
  index_t panels = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t h2d_count = 0;         ///< number of H2D transfers in this run
  std::uint64_t d2h_count = 0;         ///< number of D2H transfers in this run
  std::size_t dev_peak_bytes = 0;      ///< peak device-memory footprint (lifetime of `dev`)
  std::uint64_t peak_queue_depth = 0;  ///< deepest stream backlog during the run
};

namespace detail {

/// Snapshot of the device counters at the start of a driver run; finish()
/// writes the per-run deltas (and the peaks) into the stats. Every hybrid
/// and FT driver uses one so the footprint fields stay consistent.
class StatsScope {
 public:
  explicit StatsScope(Device& dev)
      : dev_(dev),
        h2d_bytes0_(dev.h2d_bytes()),
        d2h_bytes0_(dev.d2h_bytes()),
        h2d_count0_(dev.h2d_count()),
        d2h_count0_(dev.d2h_count()) {
    dev.stream().reset_peak_queue_depth();
  }

  void finish(HybridGehrdStats& st) const {
    st.h2d_bytes = dev_.h2d_bytes() - h2d_bytes0_;
    st.d2h_bytes = dev_.d2h_bytes() - d2h_bytes0_;
    st.h2d_count = dev_.h2d_count() - h2d_count0_;
    st.d2h_count = dev_.d2h_count() - d2h_count0_;
    st.dev_peak_bytes = dev_.peak_bytes();
    st.peak_queue_depth = dev_.stream().peak_queue_depth();
  }

 private:
  Device& dev_;
  std::uint64_t h2d_bytes0_, d2h_bytes0_, h2d_count0_, d2h_count0_;
};

}  // namespace detail

/// Reduce `a` (host memory) to Hessenberg form using `dev`. Drop-in
/// equivalent of lapack::gehrd up to floating-point reassociation.
void hybrid_gehrd(Device& dev, MatrixView<double> a, VectorView<double> tau,
                  const HybridGehrdOptions& opt = {}, HybridGehrdStats* stats = nullptr,
                  const IterationHook& hook = {});

}  // namespace fth::hybrid

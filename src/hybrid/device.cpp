#include "hybrid/device.hpp"

#include <chrono>
#include <new>
#include <thread>

#include "obs/dag.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fth::hybrid {

Device::Device(DeviceConfig cfg) : cfg_(std::move(cfg)) {
  default_stream_ = std::make_unique<Stream>(this);
}

void* Device::raw_allocate(std::size_t bytes, const char* site) {
  const std::size_t now = in_use_.fetch_add(bytes) + bytes;
  if (cfg_.memory_limit != 0 && now > cfg_.memory_limit) {
    in_use_.fetch_sub(bytes);
    throw std::bad_alloc();
  }
  std::size_t peak = peak_.load();
  while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
  }
  void* p = ::operator new(bytes);
  check::on_device_alloc(p, bytes, site, cfg_.ordinal);
  return p;
}

void Device::raw_deallocate(void* p, std::size_t bytes) noexcept {
  check::on_device_free(p);
  in_use_.fetch_sub(bytes);
  ::operator delete(p);
}

void Device::reset_transfer_stats() noexcept {
  h2d_bytes_ = 0;
  d2h_bytes_ = 0;
  h2d_count_ = 0;
  d2h_count_ = 0;
}

void Device::note_h2d(std::size_t bytes) noexcept {
  h2d_bytes_ += bytes;
  ++h2d_count_;
  static obs::Counter& total = obs::counter_metric("device.h2d_bytes");
  static obs::Counter& count = obs::counter_metric("device.h2d_count");
  total.add(bytes);
  count.add();
}

void Device::note_d2h(std::size_t bytes) noexcept {
  d2h_bytes_ += bytes;
  ++d2h_count_;
  static obs::Counter& total = obs::counter_metric("device.d2h_bytes");
  static obs::Counter& count = obs::counter_metric("device.d2h_count");
  total.add(bytes);
  count.add();
}

void Device::set_transfer_hook(TransferHook hook) {
  std::lock_guard lock(hook_m_);
  if (hook)
    transfer_hook_ = std::make_shared<const TransferHook>(std::move(hook));
  else
    transfer_hook_.reset();
}

void Device::call_transfer_hook(TransferDir dir, MatrixView<double> dst) const {
  std::shared_ptr<const TransferHook> hook;
  {
    std::lock_guard lock(hook_m_);
    hook = transfer_hook_;
  }
  if (hook) (*hook)(dir, dst);
}

void Device::charge_transfer(std::size_t bytes, bool h2d) const {
  const double gbps = h2d ? cfg_.h2d_gbps : cfg_.d2h_gbps;
  if (gbps <= 0.0) return;
  const double seconds =
      cfg_.latency_us * 1e-6 + static_cast<double>(bytes) / (gbps * 1e9);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

namespace {

void copy_view(MatrixView<const double> src, MatrixView<double> dst) {
  FTH_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
            "transfer dimension mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.data() + j * src.ld(), src.rows(), dst.data() + j * dst.ld());
}

std::size_t view_bytes(MatrixView<const double> v) {
  return static_cast<std::size_t>(v.rows()) * static_cast<std::size_t>(v.cols()) *
         sizeof(double);
}

}  // namespace

void copy_h2d_async(Stream& s, MatrixView<const double> host, DMatrixView<double> dev) {
  const std::size_t bytes = view_bytes(host);
  const std::uint64_t ticket = s.enqueue(
      "h2d", FTH_TASK_EFFECTS(FTH_READS(host) FTH_WRITES(dev)),
      [host, dev, bytes, d = s.device()] {
        obs::TraceSpan span("device", "h2d", "bytes", static_cast<double>(bytes));
        if (d != nullptr) {
          d->charge_transfer(bytes, /*h2d=*/true);
          d->note_h2d(bytes);
        }
        MatrixView<double> dev_h = dev.in_task();
        copy_view(host, dev_h);
        if (d != nullptr) d->call_transfer_hook(TransferDir::H2D, dev_h);
      });
  obs::dag::detail::on_transfer(s.obs_id(), ticket, static_cast<double>(bytes));
  // Transfer-routine context: taking the host view's base pointer for
  // registration must not itself count as a racing host access.
  check::TaskScope setup(&s, "h2d", ticket);
  check::on_transfer_enqueued(&s, ticket, /*host_is_dst=*/false, "h2d", host.data(),
                              sizeof(double), host.rows(), host.cols(), host.ld(),
                              dev.raw_data());
}

void copy_d2h_async(Stream& s, DMatrixView<const double> dev, MatrixView<double> host) {
  const std::size_t bytes = view_bytes(host);
  const std::uint64_t ticket = s.enqueue(
      "d2h", FTH_TASK_EFFECTS(FTH_READS(dev) FTH_WRITES(host)),
      [dev, host, bytes, d = s.device()] {
        obs::TraceSpan span("device", "d2h", "bytes", static_cast<double>(bytes));
        if (d != nullptr) {
          d->charge_transfer(bytes, /*h2d=*/false);
          d->note_d2h(bytes);
        }
        copy_view(dev.in_task(), host);
        if (d != nullptr) d->call_transfer_hook(TransferDir::D2H, host);
      });
  obs::dag::detail::on_transfer(s.obs_id(), ticket, static_cast<double>(bytes));
  check::TaskScope setup(&s, "d2h", ticket);
  check::on_transfer_enqueued(&s, ticket, /*host_is_dst=*/true, "d2h", host.data(),
                              sizeof(double), host.rows(), host.cols(), host.ld(),
                              dev.raw_data());
}

void copy_h2d(Stream& s, MatrixView<const double> host, DMatrixView<double> dev,
              std::source_location loc) {
  copy_h2d_async(s, host, dev);
  s.synchronize(loc);
}

void copy_d2h(Stream& s, DMatrixView<const double> dev, MatrixView<double> host,
              std::source_location loc) {
  copy_d2h_async(s, dev, host);
  s.synchronize(loc);
}

}  // namespace fth::hybrid

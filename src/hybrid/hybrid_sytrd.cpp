#include "hybrid/hybrid_sytrd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "hybrid/dev_blas.hpp"
#include "obs/trace.hpp"
#include "lapack/orghr.hpp"
#include "lapack/sytrd.hpp"
#include "lapack/sytrd_impl.hpp"

namespace fth::hybrid {

void hybrid_sytrd(Device& dev, MatrixView<double> a, VectorView<double> d,
                  VectorView<double> e, VectorView<double> tau,
                  const HybridSytrdOptions& opt, HybridGehrdStats* stats,
                  const IterationHook& hook) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "hybrid_sytrd: matrix must be square");
  FTH_CHECK(d.size() >= n, "hybrid_sytrd: d too short");
  FTH_CHECK(e.size() >= std::max<index_t>(n - 1, 0) &&
                tau.size() >= std::max<index_t>(n - 1, 0),
            "hybrid_sytrd: e/tau too short");
  FTH_CHECK(opt.nb >= 1, "hybrid_sytrd: block size must be positive");

  obs::TraceSpan run_span("hybrid", "sytrd", "n", static_cast<double>(n));
  WallTimer total_timer;
  HybridGehrdStats local_stats;
  HybridGehrdStats& st = stats != nullptr ? *stats : local_stats;
  st = {};
  const detail::StatsScope scope(dev);

  const index_t nb = opt.nb;
  const index_t nx = std::max(opt.nx, nb);
  Stream& s = dev.stream();

  index_t i = 0;
  if (n > nx + 1) {
    DeviceMatrix<double> d_a(dev, n, n, "sytrd.d_a");
    copy_h2d(s, MatrixView<const double>(a), d_a.view());

    Matrix<double> w_host(n, nb);
    // V staging buffer, loop-hoisted: the async upload that reads it is
    // only retired by the NEXT iteration's synchronous panel fetch, so a
    // per-iteration local would be freed with the transfer still live.
    Matrix<double> v_host(n, nb);
    DeviceMatrix<double> d_v(dev, n, nb, "sytrd.d_v");
    DeviceMatrix<double> d_w(dev, n, nb, "sytrd.d_w");

    while (n - i > nx + 1) {
      const index_t ib = std::min(nb, n - i - 1);

      // Panel columns to the host (full height; only rows ≥ i are live in
      // lower storage but the copy is simpler and the extra rows harmless).
      WallTimer panel_timer;
      {
        obs::TraceSpan panel_span("hybrid", "panel", "col", static_cast<double>(i));
        copy_d2h(s, d_a.block(0, i, n, ib), a.block(0, i, n, ib));

        // Host panel; each column's big SYMV runs on the device against the
        // start-of-iteration trailing matrix.
        lapack::detail::latrd_panel(
          a, i, ib, e.sub(i, ib), tau.sub(i, ib), w_host.view(),
          [&](index_t j, VectorView<const double> vj, VectorView<double> w_col) {
            const index_t cj = i + j;
            const index_t vlen = n - cj - 1;
            auto d_vcol = d_v.block(j, j, vlen, 1);
            copy_h2d_async(s, MatrixView<const double>(vj.data(), vlen, 1, vlen), d_vcol);
            symv_async(s, Uplo::Lower, 1.0,
                       d_a.block(cj + 1, cj + 1, vlen, vlen),
                       d_vcol.col(0), 0.0,
                       d_w.block(cj + 1 - i, j, vlen, 1).col(0));
            copy_d2h(s, d_w.block(cj + 1 - i, j, vlen, 1),
                     MatrixView<double>(w_col.data(), vlen, 1, vlen));
          });
      }
      st.panel_seconds += panel_timer.seconds();

      WallTimer update_timer;
      {
        obs::TraceSpan update_span("hybrid", "update", "col", static_cast<double>(i));
      // Ship clean V (explicit unit diagonal) and the finished W columns.
      const index_t vrows = n - i - 1;
      lapack::materialize_v_into(MatrixView<const double>(a), i, ib,
                                 v_host.block(0, 0, vrows, ib));
      copy_h2d_async(s, MatrixView<const double>(v_host.block(0, 0, vrows, ib)),
                     d_v.block(0, 0, vrows, ib));
      copy_h2d_async(s, MatrixView<const double>(w_host.block(i + 1, 0, vrows, ib)),
                     d_w.block(0, 0, vrows, ib));

      // Trailing rank-2k on the device (lower triangle).
      const index_t tn = n - i - ib;
      syr2k_async(s, Uplo::Lower, Trans::No, -1.0,
                  d_v.block(ib - 1, 0, tn, ib),
                  d_w.block(ib - 1, 0, tn, ib), 1.0,
                  d_a.block(i + ib, i + ib, tn, tn));

      // Host-side bookkeeping overlapped with the device update.
      for (index_t j = 0; j < ib; ++j) {
        a(i + j + 1, i + j) = e[i + j];  // replace the panel's unit entries
        d[i + j] = a(i + j, i + j);
      }
      // No loop-bottom synchronize: the next iteration's synchronous panel
      // fetch retires the V/W uploads and joins the rank-2k update
      // (fth_analyze --perf flagged the old barrier as coarse-synchronize).
      }
      st.update_seconds += update_timer.seconds();

      i += ib;
      ++st.panels;
      if (hook) {
        s.synchronize();  // host_view below needs an idle stream
        hook(IterationHookContext{.boundary = st.panels,
                                  .next_panel = i,
                                  .nb = nb,
                                  .host_a = a,
                                  .dev_a = host_view(d_a.view(), s)});
      }
    }

    // Fetch the remaining trailing block and finish on the host.
    copy_d2h(s, d_a.block(i, i, n - i, n - i),
             a.block(i, i, n - i, n - i));
  }

  WallTimer finish_timer;
  {
    obs::TraceSpan finish_span("hybrid", "finish", "col", static_cast<double>(i));
    auto trail = a.block(i, i, n - i, n - i);
    lapack::sytd2(trail, d.sub(i, n - i),
                  (i < n - 1) ? e.sub(i, n - i - 1) : VectorView<double>(),
                  (i < n - 1) ? tau.sub(i, n - i - 1) : VectorView<double>());
  }
  st.finish_seconds = finish_timer.seconds();

  st.total_seconds = total_timer.seconds();
  scope.finish(st);
}

}  // namespace fth::hybrid

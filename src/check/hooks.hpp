// fth::check inline hook layer — the only checker header the hot layers
// (la views, hybrid runtime) include.
//
// Every hook compiles to nothing when FTH_CHECK_ENABLED is 0 (the default
// for Release builds), so the checker is provably zero-overhead where the
// benches run. When compiled in (Debug builds, or -DFTH_CHECKER=ON), each
// hook is a relaxed atomic load on its fast path and only drops into
// src/check/access.cpp when there is actually something to cross-check
// (a live async transfer, or device memory registered). Activation is
// runtime-controlled: on by default when compiled in, overridable with
// FTH_CHECK=0/1 in the environment or check::set_active().
//
// The full checker API (violation reports, happens-before bookkeeping,
// seeded-violation test support) lives in check/access.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

#ifndef FTH_CHECK_ENABLED
#ifdef NDEBUG
#define FTH_CHECK_ENABLED 0
#else
#define FTH_CHECK_ENABLED 1
#endif
#endif

namespace fth::check {

/// True when the checker code is present in this build at all. Release
/// builds return false unless configured with -DFTH_CHECKER=ON; the
/// run_benches.sh zero-overhead guard asserts this via tools/fth_checkinfo.
constexpr bool compiled_in() noexcept { return FTH_CHECK_ENABLED != 0; }

class TaskEffects;  // declared-effect set (check/effects.hpp)

#if FTH_CHECK_ENABLED

namespace detail {
// Fast-path gates, written only by access.cpp.
extern std::atomic<bool> g_active;            ///< runtime on/off
extern std::atomic<std::uint32_t> g_live_transfers;  ///< async transfers not yet host-ordered
extern std::atomic<std::uint32_t> g_device_allocs;   ///< registered device allocations

/// Per-thread execution context: non-zero depth means the thread is a
/// stream worker currently inside a task (or a between-task hook), i.e.
/// "device code" in the paper's model. Maintained by hybrid::Stream via
/// check::TaskScope.
struct ThreadCtx {
  const void* stream = nullptr;
  const char* task_label = nullptr;
  std::uint64_t ticket = 0;
  int depth = 0;
  /// Declared effects of the task this worker is executing (null when the
  /// task declared none, and always null in between-task hooks — a hook
  /// must not inherit the finished task's declaration). Checked by
  /// require_task_context when FTH_CHECK_EFFECTS=1.
  const TaskEffects* effects = nullptr;
  /// Ordinal of the device whose stream this worker serves (-1 for
  /// free-standing streams). Device allocations carry the same id, and
  /// require_task_context flags a CrossDeviceAccess when a task unwraps
  /// another device's memory — each pool member is its own memory space.
  int device = -1;
};
inline thread_local ThreadCtx t_ctx;

// Slow paths (access.cpp). `elem` is sizeof(element); geometry is the
// column-major rectangle {rows, cols, ld} in elements.
void host_view_slow(const void* p, std::size_t elem, index_t rows, index_t cols,
                    index_t ld, bool write) noexcept;
void host_touch_slow(const void* p, std::size_t elem, index_t rows, index_t cols,
                     index_t ld, bool write) noexcept;
}  // namespace detail

/// True when the checker is compiled in and runtime-active.
inline bool active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// True when the calling thread is a stream worker inside a task, a
/// between-task hook, or a transfer — the contexts allowed to touch
/// device memory.
inline bool in_task_context() noexcept { return detail::t_ctx.depth > 0; }

/// Stream / ticket of the task the calling worker thread is executing
/// (null/0 on host threads). Used to attribute cross-stream Event waits.
inline const void* current_stream() noexcept { return detail::t_ctx.stream; }
inline std::uint64_t current_ticket() noexcept { return detail::t_ctx.ticket; }

/// Host-space view constructed over raw storage (MatrixView/VectorView
/// constructor, and whole-extent access via .data()). Validates that the
/// range is not device memory (unless in task context) and does not race a
/// live async transfer.
inline void note_host_view(const void* p, std::size_t elem, index_t rows,
                           index_t cols, index_t ld, bool write) noexcept {
  if (p == nullptr || !active()) return;
  if (detail::g_device_allocs.load(std::memory_order_relaxed) == 0 &&
      detail::g_live_transfers.load(std::memory_order_relaxed) == 0)
    return;
  detail::host_view_slow(p, elem, rows, cols, ld, write);
}

/// Element-granular host access (operator() / operator[]). Only checks the
/// transfer happens-before window: device-memory access is caught at view
/// construction and at .data(), so the per-element fast path stays a single
/// relaxed load while no async transfer is in flight.
inline void note_host_touch(const void* p, std::size_t elem, index_t rows,
                            index_t cols, index_t ld, bool write) noexcept {
  if (!active()) return;
  if (detail::g_live_transfers.load(std::memory_order_relaxed) == 0) return;
  detail::host_touch_slow(p, elem, rows, cols, ld, write);
}

#else  // !FTH_CHECK_ENABLED — every hook vanishes.

inline constexpr bool active() noexcept { return false; }
inline constexpr bool in_task_context() noexcept { return false; }
inline constexpr const void* current_stream() noexcept { return nullptr; }
inline constexpr std::uint64_t current_ticket() noexcept { return 0; }
inline void note_host_view(const void*, std::size_t, index_t, index_t, index_t,
                           bool) noexcept {}
inline void note_host_touch(const void*, std::size_t, index_t, index_t, index_t,
                            bool) noexcept {}

#endif  // FTH_CHECK_ENABLED

// Device-deref gate, called by MatrixView/VectorView unwrap methods (see
// la/matrix.hpp). Out-of-line even on the fast path: unwraps happen once
// per task body, never per element. No-op stub when compiled out.
#if FTH_CHECK_ENABLED
void require_task_context(const void* p, std::size_t bytes,
                          const char* what) noexcept;
#else
inline void require_task_context(const void*, std::size_t, const char*) noexcept {}
#endif

}  // namespace fth::check

#pragma once
// fth::analyze — declared-effect static dataflow analysis of the
// transfer/Event discipline (DESIGN.md §11).
//
// The runtime checker (check/access.hpp, §10) catches a missing
// happens-before edge when the offending path *executes*. This pass
// proves the same rules from the source text alone, before anything
// runs. v2 (DESIGN.md §11.3) is a two-layer analysis:
//
//  (a) Interprocedural function summaries: a first pass over the TU
//      computes, per function, a symbolic summary of its stream
//      side-effects (enqueues + declared footprints, transfers started
//      and retired, Events recorded/waited, synchronize calls, and the
//      transfers still live at exit, keyed by buffer root and stream).
//      Call sites splice the callee's summary into the caller's
//      timeline with argument-to-parameter root substitution, so
//      pipeline-stage helpers stay fully analyzed instead of skipped.
//  (b) Loop-carried happens-before: loop bodies are walked twice (a
//      fixpoint over two symbolic iterations), carrying the
//      live-transfer set and recorded-Event bindings across the
//      back-edge — a transfer left in flight at the bottom of
//      iteration i correctly races an unsynchronized host touch at
//      the top of iteration i+1, and a cross-iteration Event wait
//      retires it. This replaces the v1 soundness assumption that
//      every driver loop body is self-synchronizing, which the
//      lookahead pipeline (ROADMAP item 1) deliberately breaks.
//
// Rules (finding `rule` strings; full table in DESIGN.md §11.4):
//   transfer-race    host code touches the host side of an in-flight
//                    async transfer with no dominating Event wait /
//                    synchronize(). Mirrors the runtime checker's U2
//                    rule: a live d2h races ANY host mention of the
//                    buffer; a live h2d races host WRITES only.
//   loop-carried-race the cross-iteration form: the racing transfer
//                    was enqueued in the PREVIOUS symbolic iteration
//                    and crossed the loop back-edge still in flight.
//                    Reported against both ends — the racing line
//                    anchors the finding, the message names the
//                    back-edge source (the transfer's enqueue line).
//   stream-not-idle  hybrid::host_view() reached while enqueued work
//                    may still be in flight (no dominating sync edge).
//   in-task-context  .in_task() spelled outside an enqueued stream
//                    task lambda — host code must never unwrap.
//   undeclared-task  Stream::enqueue in src/hybrid/ or src/ft/ whose
//                    argument list carries no FTH_TASK_EFFECTS(...)
//                    declaration (src/hybrid/stream.hpp's label-only
//                    forwarder is the one sanctioned hatch).
//   chkrow-reencode  h2d into the gehrd checksum row d_e_.block(n_,..)
//                    from anything other than the freshly re-encoded
//                    new_chkrow_ or the rollback checkpoint
//                    ckpt_chkrow_ (the §7 gotcha, made structural).
//   cross-stream-race a task whose FTH_TASK_EFFECTS footprint covers
//                    the host side of a transfer still in flight on a
//                    DIFFERENT stream, with no wait_event edge carrying
//                    the producer's Event marker into the consumer's
//                    queue (the multi-device form of U2, DESIGN.md §13).
//   unbounded-pool-wait a plain Event::wait() on an Event recorded on
//                    a DevicePool member's stream. Pool members can be
//                    lost (DESIGN.md §13); a plain wait() hangs forever
//                    on a lost device — the health-checked
//                    wait_for(timeout) is mandatory. (The CLAUDE.md
//                    lost-device gotcha, made structural.)
//   stale-checksum-write a stream task whose declared FTH_WRITES
//                    covers FT-protected checksum storage (a `d_*chk*`
//                    device root) with no dominating re-encode of that
//                    root — an h2d refresh from host truth or an
//                    *encode* call — since the last checksum
//                    comparison (*verify* call). Such a write makes
//                    the maintained code drift from what the next
//                    verify compares: the gehrd chkrow-reencode
//                    discipline, generalized to the sytrd/gebrd/pool
//                    drivers' checksum storage.
//
// Event::wait_for counts as wait(): the timeout path has no edge, but
// every driver throws on it, so the straight-line continuation is
// ordered. Conditionally executed stream operations are summarized as
// the may-union (branch bodies are walked as straight-line code): a
// may-enqueued transfer is treated as live, which is the conservative
// direction for the race rules.
//
// v3 adds the performance plane (DESIGN.md §11.5) — the dual of the
// race rules, computed from the same symbolic state but advisory by
// default (Options::perf; findings carry perf = true and never gate):
//   redundant-wait   an Event::wait()/wait_for() whose recorded marker
//                    is already host-ordered on EVERY path reaching it
//                    (a dominating synchronize/sync-copy/earlier wait
//                    retired through the marker): the edge retires
//                    nothing and only costs a handshake.
//   coarse-synchronize a full Stream::synchronize() that blocks the
//                    host on more device work than any host-visible
//                    obligation requires: no live transfer at all, the
//                    newest live transfer's ticket strictly below the
//                    stream tail (a record()/wait() pair at that ticket
//                    is the narrower edge), or a tail h2d whose source
//                    the host never rewrites before the next device op
//                    (retirement can be deferred). A host_view in the
//                    same brace scope justifies the barrier (that is
//                    the drain-before-unwrap discipline), as does a
//                    host touch of a live d2h destination (fetch-join).
//   false-serialization two back-to-back tasks on one stream whose
//                    declared FTH_TASK_EFFECTS footprints are disjoint
//                    (no root shared with a write on either side): FIFO
//                    order is pure serialization; a second stream (or
//                    pool member) could overlap them.
//   over-wide-effects a declared FTH_READS/FTH_WRITES root the task
//                    lambda never mentions: the phantom footprint
//                    manufactures cross-stream edges and blocks the
//                    overlap the false-serialization rule looks for.
//   dead-transfer    a d2h whose host destination is overwritten by the
//                    next d2h without any host read in between, or an
//                    h2d whose device destination is overwritten by the
//                    next h2d with no device op in between.
// A `// fth-perf: expect <rule>` comment on (or up to three lines
// above) the flagged line marks the finding as expected — the checked
// exemplars in examples/ — which the CLI reports but never promotes to
// an error, keeping the perf-plane golden count meaningful.
//
// Whole-tree gate: tools/fth_analyze.cpp, wired as the analyze.repo
// ctest (and analyze.perf, which bounds the two-pass engine's cost).
// Unlike the §10 checker this pass has no runtime hooks and is
// compiled into every build type.

#include <cstdint>
#include <string>
#include <vector>

namespace fth::check::analyze {

struct Finding {
  std::string file;          ///< repo-relative path
  int line = 0;              ///< 1-based
  std::string rule;          ///< see header comment
  std::string message;       ///< what is wrong, runtime-checker flavoured
  std::string missing_edge;  ///< correctness: the edge that would fix it;
                             ///< perf plane: the fix-it suggestion
  bool perf = false;         ///< performance-plane (advisory) finding
  bool expected = false;     ///< matched a `// fth-perf: expect` marker
  std::vector<std::string> tasks;  ///< false-serialization: the task pair
};

/// Aggregate counters, mostly for the golden "the analyzer actually saw
/// the tree" assertions in tests/check/test_analyze.cpp. Summaries
/// accumulate callee stream operations once per call site (on top of
/// the callee's own once-per-definition count), so helper-factored
/// pipelines no longer vanish from the counts; the second symbolic
/// loop iteration is never counted.
struct Stats {
  std::size_t functions = 0;
  std::size_t enqueues = 0;   ///< explicit Stream::enqueue calls
  std::size_t transfers = 0;  ///< copy_{h2d,d2h}[_async] calls
  std::size_t records = 0;    ///< Event = stream.record() bindings
  std::size_t waits = 0;      ///< wait/ready/wait_for() on recorded Events
  std::size_t syncs = 0;      ///< synchronize() calls
  std::size_t calls = 0;      ///< call sites spliced via a function summary
  void accumulate(const Stats& o) {
    functions += o.functions;
    enqueues += o.enqueues;
    transfers += o.transfers;
    records += o.records;
    waits += o.waits;
    syncs += o.syncs;
    calls += o.calls;
  }
};

/// True for the sources the discipline applies to: C++ files under the
/// hybrid runtime, the FT drivers, and the user-facing surfaces.
bool in_scope(const std::string& rel_path);

/// Per-run switches. The default-constructed value reproduces the v2
/// correctness gate exactly (the perf plane is never even computed), so
/// `--perf` cannot perturb the analyze.repo output.
struct Options {
  bool perf = false;  ///< also compute the §11.5 performance plane
};

/// Analyze one translation unit's text. `rel_path` selects per-layer
/// rule scoping (and is stamped into findings); out-of-scope paths
/// yield no findings. Pure function of its arguments — the seeded
/// regression tests run it on mutated in-memory copies of the real
/// drivers.
std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& content,
                                    Stats* stats = nullptr, const Options& opts = {});

/// The canonical key=value serialization of the whole-tree stats, the
/// format `fth_analyze --stats-out` writes and the golden test
/// (tests/check/analyze_golden.txt) compares against.
std::string stats_lines(const Stats& stats, std::size_t files);

/// "file:line: [rule] message" + an indented `required:` edge line, the
/// same shape tools/fth_lint.cpp prints.
std::string format(const Finding& finding);

/// SARIF 2.1.0 document for `findings`: one run, the full §11.4 rule
/// table in tool.driver.rules, one result per finding with the
/// `required:` edge folded into the message. fth_analyze --sarif emits
/// this so CI renders findings as inline annotations; the text format
/// stays byte-identical.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace fth::check::analyze

#pragma once
// fth::analyze — declared-effect static dataflow analysis of the
// transfer/Event discipline (DESIGN.md §11).
//
// The runtime checker (check/access.hpp, §10) catches a missing
// happens-before edge when the offending path *executes*. This pass
// proves the same rules from the source text alone, before anything
// runs: it reconstructs, per function, a symbolic timeline of stream
// tickets — every enqueue, h2d/d2h transfer, Event record/wait and
// synchronize() in program order — and walks host code against the
// set of still-in-flight transfers.
//
// Rules (finding `rule` strings):
//   transfer-race    host code touches the host side of an in-flight
//                    async transfer with no dominating Event wait /
//                    synchronize(). Mirrors the runtime checker's U2
//                    rule: a live d2h races ANY host mention of the
//                    buffer; a live h2d races host WRITES only.
//   stream-not-idle  hybrid::host_view() reached while enqueued work
//                    may still be in flight (no dominating sync edge).
//   in-task-context  .in_task() spelled outside an enqueued stream
//                    task lambda — host code must never unwrap.
//   undeclared-task  Stream::enqueue in src/hybrid/ or src/ft/ whose
//                    argument list carries no FTH_TASK_EFFECTS(...)
//                    declaration (src/hybrid/stream.hpp's label-only
//                    forwarder is the one sanctioned hatch).
//   chkrow-reencode  h2d into the gehrd checksum row d_e_.block(n_,..)
//                    from anything other than the freshly re-encoded
//                    new_chkrow_ or the rollback checkpoint
//                    ckpt_chkrow_ (the §7 gotcha, made structural).
//   cross-stream-race a task whose FTH_TASK_EFFECTS footprint covers
//                    the host side of a transfer still in flight on a
//                    DIFFERENT stream, with no wait_event edge carrying
//                    the producer's Event marker into the consumer's
//                    queue (the multi-device form of U2, DESIGN.md §13;
//                    FIFO order covers same-stream pairs). Transfers are
//                    attributed to the stream named by their first
//                    argument; Event::wait_for counts as wait() — the
//                    timeout path has no edge, but every driver throws
//                    on it, so the straight-line continuation is ordered.
//
// The analysis is a single linear pass per function: no loop
// unrolling, no branch joins. That is sound-enough here by
// construction — every driver loop body is self-synchronizing (it
// ends in a synchronize()/sync-copy), which the analyzer itself
// verifies, so iteration 1 sees every edge the steady state needs.
//
// Whole-tree gate: tools/fth_analyze.cpp, wired as the analyze.repo
// ctest. Unlike the §10 checker this pass has no runtime hooks and is
// compiled into every build type.

#include <cstdint>
#include <string>
#include <vector>

namespace fth::check::analyze {

struct Finding {
  std::string file;          ///< repo-relative path
  int line = 0;              ///< 1-based
  std::string rule;          ///< see header comment
  std::string message;       ///< what is wrong, runtime-checker flavoured
  std::string missing_edge;  ///< the happens-before edge that would fix it
};

/// Aggregate counters, mostly for the golden "the analyzer actually saw
/// the tree" assertions in tests/check/test_analyze.cpp.
struct Stats {
  std::size_t functions = 0;
  std::size_t enqueues = 0;   ///< explicit Stream::enqueue calls
  std::size_t transfers = 0;  ///< copy_{h2d,d2h}[_async] calls
  std::size_t records = 0;    ///< Event = stream.record() bindings
  std::size_t waits = 0;      ///< wait/ready/wait_for() on recorded Events
  std::size_t syncs = 0;      ///< synchronize() calls
  void accumulate(const Stats& o) {
    functions += o.functions;
    enqueues += o.enqueues;
    transfers += o.transfers;
    records += o.records;
    waits += o.waits;
    syncs += o.syncs;
  }
};

/// True for the sources the discipline applies to: C++ files under the
/// hybrid runtime, the FT drivers, and the user-facing surfaces.
bool in_scope(const std::string& rel_path);

/// Analyze one translation unit's text. `rel_path` selects per-layer
/// rule scoping (and is stamped into findings); out-of-scope paths
/// yield no findings. Pure function of its arguments — the seeded
/// regression tests run it on mutated in-memory copies of the real
/// drivers.
std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& content,
                                    Stats* stats = nullptr);

/// "file:line: [rule] message" + an indented `required:` edge line, the
/// same shape tools/fth_lint.cpp prints.
std::string format(const Finding& finding);

}  // namespace fth::check::analyze

#include "check/analyze_lex.hpp"

#include <cctype>

namespace fth::check::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Exactly a raw-string prefix (R"..), not an identifier merely ending in R.
bool is_raw_prefix(const std::string& id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

/// Multi-character punctuators, longest first within each length bucket.
const char* const kPunct3[] = {"<<=", ">>=", "->*", "..."};
const char* const kPunct2[] = {"::", "->", "++", "--", "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=",
                               "&&", "||", "<<", ">>"};

}  // namespace

bool is_loop_keyword(const std::string& ident) {
  return ident == "for" || ident == "while" || ident == "do";
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool line_start = true;  // only whitespace seen since the last newline

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop the logical line (honoring \-continuations).
    if (line_start && c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;  // newline handled by the main loop
        ++i;
      }
      continue;
    }
    line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i < n) {
        if (src[i] == '*' && i + 1 < n && src[i + 1] == '/') {
          i += 2;
          break;
        }
        if (src[i] == '\n') ++line;
        ++i;
      }
      continue;
    }

    // Identifier (possibly a raw-string prefix).
    if (ident_start(c)) {
      const std::size_t b = i;
      while (i < n && ident_char(src[i])) ++i;
      const std::string id = src.substr(b, i - b);
      if (i < n && src[i] == '"' && is_raw_prefix(id)) {
        // R"delim( ... )delim" — no escapes inside.
        ++i;  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') delim.push_back(src[i++]);
        if (i < n) ++i;  // '('
        const std::string close = ")" + delim + "\"";
        const std::size_t pos = src.find(close, i);
        const int start_line = line;
        std::string contents;
        if (pos == std::string::npos) {
          contents = src.substr(i);
          i = n;
        } else {
          contents = src.substr(i, pos - i);
          i = pos + close.size();
        }
        for (const char cc : contents)
          if (cc == '\n') ++line;
        out.push_back({Tok::String, std::move(contents), start_line});
        continue;
      }
      out.push_back({Tok::Ident, id, line});
      continue;
    }

    // Number (loose pp-number: digits, letters, dots, digit separators,
    // sign after an exponent marker).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      const std::size_t b = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > b) {
          const char prev = src[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      out.push_back({Tok::Number, src.substr(b, i - b), line});
      continue;
    }

    // Ordinary string literal (a u8/u/U/L prefix was emitted as an Ident
    // token just above, which the analyzer ignores).
    if (c == '"') {
      ++i;
      const int start_line = line;
      std::string contents;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          contents.push_back(src[i + 1]);
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line counts sane
        contents.push_back(src[i++]);
      }
      if (i < n) ++i;  // closing quote
      out.push_back({Tok::String, std::move(contents), start_line});
      continue;
    }
    if (c == '\'') {
      ++i;
      const int start_line = line;
      std::string contents;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          contents.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        contents.push_back(src[i++]);
      }
      if (i < n) ++i;
      out.push_back({Tok::Char, std::move(contents), start_line});
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    if (i + 2 < n) {
      for (const char* p : kPunct3) {
        if (src.compare(i, 3, p) == 0) {
          out.push_back({Tok::Punct, p, line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      for (const char* p : kPunct2) {
        if (src.compare(i, 2, p) == 0) {
          out.push_back({Tok::Punct, p, line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.push_back({Tok::Punct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace fth::check::analyze

// fth::check::lint — the repo's source-lint rules as a pure library.
//
// The rules enforce the coding discipline CLAUDE.md documents, so the
// invariants stop living only in prose:
//
//   device-unwrap      The unchecked device-view escape hatches
//                      (.unchecked_host_view(), .raw_data(), the hook-free
//                      detail::unchecked_view constructor tag) appear only
//                      in the allowlisted runtime layers (src/hybrid/, the
//                      view definitions themselves, the checker, the fault
//                      plane's worker-thread fire paths, and the seeded
//                      checker self-tests). Everyone else goes through the
//                      checked gates: .in_task() or hybrid::host_view().
//   int-index          LAPACK-subset / hybrid / FT signatures take index_t
//                      for dimensions and leading dimensions, never int —
//                      i + j*ld overflows 32 bits well inside the paper's
//                      10110-sized sweep, and a lone int parameter poisons
//                      that arithmetic silently.
//   naked-new-array    No `new T[...]`; storage is Matrix<T>, std::vector,
//                      or Device::raw_allocate (tracked, checker-visible).
//   panel-impl         The blocked panel loops (lahr2_panel, latrd_panel,
//                      labrd_panel) are *defined* only in *_impl.hpp
//                      headers templated on the trailing-matrix operation;
//                      drivers call them, they never re-implement them.
//
// tools/fth_lint walks the tree and applies these; tests/check/test_lint.cpp
// feeds seeded-bad snippets through the same entry points, so a rule that
// stops firing fails a unit test, not just a code review.
#pragma once

#include <string>
#include <vector>

namespace fth::check::lint {

/// One lint finding. `line` is 1-based; `rule` is the stable rule id.
struct Issue {
  std::string file;     ///< repo-relative path (forward slashes)
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< "device-unwrap", "int-index", ...
  std::string message;  ///< human-readable explanation
  std::string excerpt;  ///< the offending source line, trimmed
};

/// True when `rel_path` is a C++ source the lint scans at all
/// (.hpp/.cpp under src/, tests/, tools/, examples/, bench/).
bool in_scope(const std::string& rel_path);

/// Apply every rule to one file's content. `rel_path` must be
/// repo-relative with forward slashes (it drives the per-rule scopes and
/// allowlists). Comment text (// and /* */) is not scanned.
std::vector<Issue> lint_file(const std::string& rel_path, const std::string& content);

/// Format one issue as "file:line: [rule] message" plus the excerpt.
std::string format(const Issue& issue);

}  // namespace fth::check::lint

#include "check/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/analyze_lex.hpp"

namespace fth::check::analyze {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// Words that cannot be the host-buffer root of a transfer argument:
/// type spellings, namespaces, and qualifiers that precede the actual
/// variable in expressions like `a.view(...)` or `host.cview()`.
bool is_type_word(const std::string& id) {
  static const std::set<std::string> kWords = {
      "MatrixView", "VectorView", "DMatrixView", "DVectorView",
      "Matrix",     "Vector",     "const",       "double",
      "float",      "int",        "auto",        "void",
      "char",       "bool",       "unsigned",    "index_t",
      "std",        "hybrid",     "detail",      "lapack",
      "blas",       "check",      "fth",         "static_cast",
      "size_t",     "uint64_t",   "int64_t",
  };
  return kWords.count(id) > 0;
}

/// FT-protected checksum storage, by the repo's naming convention: a
/// device-resident buffer whose name carries `chk` (d_chke_, d_chkw_,
/// d_chkc_, d_chkr_, ...). The stale-checksum-write rule guards tasks
/// that declare writes over these roots (DESIGN.md §11.4).
bool is_protected_chk_root(const std::string& root) {
  return starts_with(root, "d_") && contains(root, "chk");
}

/// The symbolic analogue of the runtime checker's transfer table: one
/// still-in-flight asynchronous copy (access.cpp host_touch_locked).
struct Transfer {
  char dir = 'h';    ///< 'h' = h2d (host side is read), 'd' = d2h (host side is written)
  std::string root;  ///< host-buffer root symbol, e.g. y_host
  std::string stream;  ///< stream argument's root symbol, e.g. s_ / sd (pool drivers)
  std::uint64_t ticket = 0;
  int line = 0;        ///< line the copy was enqueued on
  bool fresh = false;  ///< created by the summary replay currently running
  bool carried = false;  ///< crossed a loop back-edge from the previous iteration
};

/// Event binding: the marker ticket, the recording stream, and whether
/// that stream is a DevicePool member's (unbounded-pool-wait rule).
struct EventBind {
  std::uint64_t marker = 0;
  std::string stream;
  bool pool = false;
};

// ---- function summaries (DESIGN.md §11.3) -----------------------------------

/// One effect root of a declared task footprint.
struct EffRoot {
  std::string root;
  bool write = false;
};

/// One abstract stream-timeline operation. A function summary is the
/// sequence of these its body performs; call sites replay the callee's
/// (resolved) sequence with argument-to-parameter substitution.
struct Op {
  enum Kind {
    kTick,       ///< n FIFO-ordered device ops with no host footprint
    kTransfer,   ///< copy_{h2d,d2h}[_async]; dir, root (host side), stream, dest
    kEnqueue,    ///< declared task: label, stream, effects
    kRecord,     ///< event = stream.record() binding
    kWaitHost,   ///< event.wait()/ready()/wait_for() from the host
    kWaitEvent,  ///< consumer.wait_event(event)
    kSync,       ///< stream.synchronize()
    kHostTouch,  ///< host-code mention of a root; flag = write
    kHostView,   ///< hybrid::host_view(...)
    kEncode,     ///< *encode* call: sanctions checksum writes until the next verify
    kVerify,     ///< *verify* call: a checksum comparison point
    kCall,       ///< unresolved call to a TU-local function (resolve_summary)
  };
  Kind kind = kTick;
  int line = 0;
  int n = 1;           ///< kTick: how many tickets; kWaitHost: 0 for ready() polls
  char dir = 'd';      ///< kTransfer
  bool flag = false;   ///< kTransfer: synchronous; kWaitHost: bounded; kHostTouch: write
  int scope = -1;      ///< kSync/kHostView: token index of the enclosing `{`
  std::string a;       ///< root / event / label / callee name
  std::string b;       ///< stream / consumer
  std::string dest;    ///< kTransfer h2d: destination root (re-encode marker)
  std::string sig;     ///< kTransfer: argument-token signature (dead-transfer)
  std::vector<EffRoot> effects;    ///< kEnqueue
  std::vector<std::string> args;   ///< kCall: argument root symbols
};

struct Summary {
  std::vector<std::string> params;
  std::vector<Op> raw;       ///< as emitted (kCall unresolved)
  std::vector<Op> ops;       ///< resolved: kCall spliced, names substituted
  bool resolved = false;
  bool resolving = false;    ///< cycle guard: a recursive call is dropped
};

/// A top-level function definition found in the TU.
struct FuncDef {
  std::string name;  ///< unqualified; empty for operators/lambdas
  std::vector<std::string> params;
  std::size_t body_begin = 0;  ///< first token inside the `{`
  std::size_t body_end = 0;    ///< the matching `}` token
};

struct Engine {
  std::string file;
  std::vector<Token> t;
  std::vector<Finding> findings;
  Stats stats;
  bool effects_scoped = false;  ///< undeclared-task rule applies to this file

  std::vector<FuncDef> defs;
  std::map<std::string, Summary> summaries;

  // ---- walk mode ----
  bool summarizing = false;       ///< pass 1: emit ops, no findings
  std::vector<Op>* sink = nullptr;  ///< pass-1 op sink
  int replay_depth = 0;           ///< > 0 while splicing a callee summary
  int second_pass_depth = 0;      ///< > 0 inside a loop body's second walk
  int replay_line = 0;            ///< call-site line replay findings anchor on
  std::string replay_callee;      ///< helper name, for replay messages

  // ---- per-function symbolic stream state ----
  std::uint64_t ticket = 0;  ///< tickets issued so far (tail of the stream)
  std::uint64_t synced = 0;  ///< highest ticket known host-ordered
  std::vector<Transfer> live;
  std::map<std::string, EventBind> events;
  /// consumer stream -> producer stream -> highest marker ticket a
  /// wait_event edge carries across. Device-side ordering, so host
  /// retirement (synced) never changes it.
  std::map<std::string, std::map<std::string, std::uint64_t>> xedges;
  /// Streams bound from a DevicePool member (`sd = pool.stream(d)`).
  std::set<std::string> pool_streams;
  /// Checksum roots re-encoded from host truth since the last verify,
  /// and the wildcard an *encode* call raises (stale-checksum-write).
  std::set<std::string> reencoded;
  bool reencode_all = false;
  std::set<std::string> dedupe;

  // ---- performance plane (DESIGN.md §11.5) --------------------------------
  bool perf = false;  ///< compute the advisory overlap rules for this file
  /// Brace-scope index per token (token index of the nearest enclosing
  /// `{`, -1 at namespace level): a host_view justifies a synchronize()
  /// only from the SAME scope — the drain-before-unwrap idiom — so a
  /// barrier serving a conditional hook branch is still reported as
  /// movable into that branch.
  std::vector<int> scope_of;
  /// One deferred advisory finding. A candidate can be observed on
  /// several symbolic paths (both loop walks, every reaching branch):
  /// it is reported only if some path fires it and NO path justifies it
  /// — the "redundant on every path" soundness rule.
  struct PerfCand {
    int line = 0;
    std::string rule;
    std::string message;
    std::string fixit;
    std::vector<std::string> tasks;
    bool fired = false;
    bool justified = false;
  };
  std::map<std::string, std::size_t> perf_index;  ///< line:rule:detail -> slot
  std::vector<PerfCand> perf_cands;
  /// A synchronize() under evaluation: open until the next device-side
  /// op (fired — the barrier served no host consumption) or a
  /// justifying host consumption (same-scope host_view, or a host write
  /// of a deferrable h2d source).
  struct OpenSync {
    bool open = false;
    std::size_t slot = 0;
    int scope = -1;
    char flavor = 'e';  ///< 'e' no live transfer, 'n' narrowable, 'd' deferrable h2d
    std::set<std::string> h2d_roots;  ///< flavor 'd': host sources still live
  };
  OpenSync osync_;
  /// dead-transfer state: host roots with an unconsumed d2h and device
  /// roots with an unconsumed h2d (root -> enqueue line + the full
  /// argument-token signature); any device op may read an h2d
  /// destination, any host mention consumes a d2h destination. Two
  /// copies only pair up when their argument signatures match exactly —
  /// fetching two *different* blocks of one matrix is routine, not a
  /// dead transfer.
  struct PendingCopy {
    int line = 0;
    std::string sig;
  };
  std::map<std::string, PendingCopy> d2h_unread_;
  std::map<std::string, PendingCopy> h2d_dest_unread_;
  /// Ticket of the newest declared task enqueue: a barrier joining an
  /// unretired *task* may be consuming host state the task writes
  /// through a by-reference capture (the detect() idiom), which the
  /// effects system cannot see — the no-live-transfer flavor stays
  /// silent there.
  std::uint64_t last_task_ticket_ = 0;
  /// false-serialization adjacency: the previous declared task, valid
  /// while the stream tail is still its ticket.
  struct PrevEnq {
    bool valid = false;
    std::uint64_t ticket = 0;
    std::string stream, label;
    int line = 0;
    std::vector<EffRoot> effects;
  };
  PrevEnq prev_enq_;

  void reset_function_state() {
    ticket = 0;
    synced = 0;
    live.clear();
    events.clear();
    xedges.clear();
    pool_streams.clear();
    reencoded.clear();
    reencode_all = false;
    osync_.open = false;
    d2h_unread_.clear();
    h2d_dest_unread_.clear();
    prev_enq_.valid = false;
    last_task_ticket_ = 0;
  }

  bool counting() const { return !summarizing && second_pass_depth == 0; }

  // ---- token helpers ----
  bool is_punct(std::size_t i, const char* p) const {
    return i < t.size() && t[i].kind == Tok::Punct && t[i].text == p;
  }
  bool is_ident(std::size_t i) const { return i < t.size() && t[i].kind == Tok::Ident; }

  /// Index of the `)` matching the `(` at `open` (paren depth only;
  /// literals are already tokenized away). Clamps on imbalance.
  std::size_t close_paren(std::size_t open) const {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "(") {
        ++d;
      } else if (t[j].text == ")") {
        if (--d == 0) return j;
      }
    }
    return t.empty() ? 0 : t.size() - 1;
  }

  std::size_t close_square(std::size_t open) const {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "[") {
        ++d;
      } else if (t[j].text == "]") {
        if (--d == 0) return j;
      }
    }
    return t.empty() ? 0 : t.size() - 1;
  }

  std::size_t close_brace(std::size_t open) const {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "{") {
        ++d;
      } else if (t[j].text == "}") {
        if (--d == 0) return j;
      }
    }
    return t.empty() ? 0 : t.size() - 1;
  }

  /// Top-level argument ranges of the call whose `(` is at `open`.
  /// Commas nested in parens, braces (lambda bodies) or squares
  /// (captures, subscripts) do not split.
  std::vector<std::pair<std::size_t, std::size_t>> split_args(std::size_t open,
                                                              std::size_t close) const {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int pd = 0, bd = 0, sd = 0;
    std::size_t b = open + 1;
    for (std::size_t j = open; j <= close && j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      const std::string& x = t[j].text;
      if (x == "(") {
        ++pd;
      } else if (x == ")") {
        if (--pd == 0) {
          if (j > b) args.push_back({b, j});
          break;
        }
      } else if (x == "{") {
        ++bd;
      } else if (x == "}") {
        --bd;
      } else if (x == "[") {
        ++sd;
      } else if (x == "]") {
        --sd;
      } else if (x == "," && pd == 1 && bd == 0 && sd == 0) {
        args.push_back({b, j});
        b = j + 1;
      }
    }
    return args;
  }

  /// A `(` at `open` is a *call* (not a declaration) iff the first
  /// argument reads like an expression: an identifier followed by `,`
  /// or `.`. Parameter lists read `Type& name` / `MatrixView<...>`.
  bool is_call(std::size_t open) const {
    return is_ident(open + 1) && (is_punct(open + 2, ",") || is_punct(open + 2, "."));
  }

  /// The `{` at `bi` opens a function body iff, skipping trailing
  /// cv/noexcept-style qualifiers, it is preceded by `)`. Namespace,
  /// class and initializer braces are preceded by identifiers or `=`.
  bool opens_function(std::size_t bi) const {
    if (bi == 0) return false;
    std::size_t j = bi - 1;
    while (j > 0 && t[j].kind == Tok::Ident &&
           (t[j].text == "const" || t[j].text == "noexcept" || t[j].text == "override" ||
            t[j].text == "final" || t[j].text == "mutable"))
      --j;
    return t[j].kind == Tok::Punct && t[j].text == ")";
  }

  /// First plausible host-buffer symbol in an argument range: an
  /// identifier that is not a type/namespace word, not qualified
  /// (`x::`) or templated (`x<`), and stands where a variable would
  /// (`a`, `a.view(...)`, `a[...]`).
  std::string root_of(std::size_t b, std::size_t e) const {
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind != Tok::Ident) continue;
      const std::string& id = t[j].text;
      if (is_type_word(id)) continue;
      if (j + 1 < e && t[j + 1].kind == Tok::Punct &&
          (t[j + 1].text == "::" || t[j + 1].text == "<"))
        continue;
      if (j + 1 >= e) return id;
      if (t[j + 1].kind == Tok::Punct) {
        const std::string& nx = t[j + 1].text;
        if (nx == "." || nx == "," || nx == ")" || nx == "[") return id;
      }
    }
    return {};
  }

  /// Does the postfix expression starting at the identifier at `i` end
  /// up on the left of an assignment? Mirrors the runtime rule that a
  /// live h2d transfer races host *writes* only.
  bool is_write(std::size_t i) const {
    std::size_t j = i + 1;
    while (j < t.size() && t[j].kind == Tok::Punct) {
      if (t[j].text == "(") {
        j = close_paren(j) + 1;
      } else if (t[j].text == "[") {
        j = close_square(j) + 1;
      } else if ((t[j].text == "." || t[j].text == "->") && is_ident(j + 1)) {
        j += 2;
      } else {
        break;
      }
    }
    return j < t.size() && t[j].kind == Tok::Punct &&
           (t[j].text == "=" || t[j].text == "+=" || t[j].text == "-=" ||
            t[j].text == "*=" || t[j].text == "/=");
  }

  void report(int line, const char* rule, std::string message, std::string edge = {}) {
    if (summarizing) return;  // pass 2 re-walks everything and reports
    std::string key = std::to_string(line);
    key += ':';
    key += rule;
    if (!dedupe.insert(std::move(key)).second) return;
    findings.push_back({file, line, rule, std::move(message), std::move(edge)});
  }

  // ---- symbolic stream operations ----

  void retire_through(std::uint64_t thru) {
    std::vector<Transfer> keep;
    for (auto& tr : live)
      if (tr.ticket > thru) keep.push_back(std::move(tr));
    live.swap(keep);
    if (thru > synced) synced = thru;
  }

  void retire_all() {
    live.clear();
    synced = ticket;
  }

  void drop_root(const std::string& root) {
    std::vector<Transfer> keep;
    for (auto& tr : live)
      if (tr.root != root) keep.push_back(std::move(tr));
    live.swap(keep);
  }

  /// The line a replay finding anchors on (the call site) and the
  /// suffix naming the helper whose summary surfaced it.
  int anchor(int op_line) const { return replay_depth > 0 ? replay_line : op_line; }
  std::string via() const {
    return replay_depth > 0 ? " (via the summary of '" + replay_callee + "(...)')" : "";
  }

  // ---- performance-plane machinery (DESIGN.md §11.5) ----------------------

  std::size_t perf_slot(int line, const char* rule, const std::string& detail) {
    std::string key = std::to_string(line);
    key += ':';
    key += rule;
    key += ':';
    key += detail;
    const auto it = perf_index.find(key);
    if (it != perf_index.end()) return it->second;
    const std::size_t slot = perf_cands.size();
    perf_index.emplace(std::move(key), slot);
    PerfCand c;
    c.line = line;
    c.rule = rule;
    perf_cands.push_back(std::move(c));
    return slot;
  }

  void close_open_sync(bool justified) {
    if (!osync_.open) return;
    PerfCand& c = perf_cands[osync_.slot];
    (justified ? c.justified : c.fired) = true;
    osync_.open = false;
  }

  /// Classify a synchronize() against the symbolic state *before* it
  /// retires anything, and open a deferred candidate. Silent cases: a
  /// barrier with nothing enqueued past the host-ordered point (the
  /// poisoned-/error-path drains), and a barrier whose stream tail is a
  /// live d2h (the fetch-join idiom — the barrier IS the consume edge,
  /// and no narrower edge is cheaper at the tail).
  void eval_sync_candidate(const Op& op) {
    if (replay_depth > 0) return;  // anchor belongs to the helper's own walk
    if (ticket <= synced) return;
    // Pool-member drains (DESIGN.md §13) are out of model: the engine
    // keeps one symbolic ticket counter across all streams, so it
    // cannot tell which member's work a per-member synchronize() joins.
    if (!op.b.empty() && (pool_streams.count(op.b) > 0 || contains(op.b, "pool"))) return;
    std::uint64_t tail_ticket = 0;
    bool all_h2d = true;
    char tail_dir = 'h';
    std::string tail_root;
    int tail_line = 0;
    std::set<std::string> h2d_roots;
    for (const auto& tr : live) {
      if (tr.ticket >= tail_ticket) {
        tail_ticket = tr.ticket;
        tail_dir = tr.dir;
        tail_root = tr.root;
        tail_line = tr.line;
      }
      if (tr.dir == 'h') h2d_roots.insert(tr.root);
      else all_h2d = false;
    }
    char flavor;
    std::string msg, fix;
    if (live.empty()) {
      // An unretired declared task may write host state through a
      // by-reference capture (the detect() result struct): that join
      // is required and invisible to the effects system — stay silent.
      if (last_task_ticket_ > synced) return;
      flavor = 'e';
      msg = "synchronize() blocks the host on " + std::to_string(ticket - synced) +
            " enqueued device op(s) with no in-flight transfer left to retire: the stream "
            "drains with nothing host-visible produced by the barrier";
      fix = "drop the barrier; if a host_view/hook follows on some branch, synchronize() "
            "inside that branch only, so the common path overlaps the device tail";
    } else if (tail_ticket < ticket) {
      flavor = 'n';
      msg = "synchronize() waits for the whole stream (tail ticket " + std::to_string(ticket) +
            ") when the newest host-visible obligation is the " +
            (tail_dir == 'h' ? "h2d" : "d2h") + " of '" + tail_root + "' enqueued at line " +
            std::to_string(tail_line) + " (ticket " + std::to_string(tail_ticket) +
            "): every device op after that transfer is serialized against the host for "
            "nothing";
      fix = "record an Event right after the transfer at line " + std::to_string(tail_line) +
            " and wait on that Event here, letting the remaining enqueued work overlap host "
            "code";
    } else if (tail_dir == 'h' && all_h2d) {
      flavor = 'd';
      msg = "synchronize() joins h2d transfer(s) that only read host buffer(s) ('" +
            tail_root + "'): the host does not rewrite them before the next device "
            "operation, so nothing needs retiring at this barrier";
      fix = "record an Event after the h2d and wait on it immediately before the next host "
            "write of '" + tail_root + "' (or rely on a later dominating barrier) instead "
            "of blocking here";
    } else {
      return;  // tail is a d2h fetch-join: the barrier is the consume edge
    }
    const std::size_t slot = perf_slot(op.line, "coarse-synchronize", "");
    PerfCand& c = perf_cands[slot];
    if (c.message.empty()) {
      c.message = std::move(msg);
      c.fixit = std::move(fix);
    }
    osync_ = OpenSync{true, slot, op.scope, flavor, std::move(h2d_roots)};
  }

  void perf_fire(int line, const char* rule, const std::string& detail, std::string msg,
                 std::string fix, std::vector<std::string> tasks = {}) {
    PerfCand& c = perf_cands[perf_slot(line, rule, detail)];
    c.fired = true;
    if (c.message.empty()) {
      c.message = std::move(msg);
      c.fixit = std::move(fix);
      c.tasks = std::move(tasks);
    }
  }

  static bool footprints_conflict(const std::vector<EffRoot>& a, const std::vector<EffRoot>& b) {
    for (const EffRoot& x : a)
      for (const EffRoot& y : b)
        if (x.root == y.root && (x.write || y.write)) return true;
    return false;
  }

  /// The advisory-plane transition function, run before each op's
  /// correctness application (so it sees the state the op is about to
  /// change). Candidates are only *opened* on direct walks
  /// (replay_depth == 0 — a helper's own pass-2 walk anchors its
  /// findings); state consumption/invalidation runs on replays too.
  void perf_pre(const Op& op) {
    if (!perf || summarizing) return;
    switch (op.kind) {
      case Op::kTick:
        close_open_sync(false);
        h2d_dest_unread_.clear();
        prev_enq_.valid = false;
        break;
      case Op::kTransfer:
        close_open_sync(false);
        prev_enq_.valid = false;
        if (op.dir == 'd') {
          h2d_dest_unread_.clear();  // the copy reads device memory
          if (!op.a.empty()) {
            const auto it = d2h_unread_.find(op.a);
            if (it != d2h_unread_.end() && replay_depth == 0 && !op.sig.empty() &&
                it->second.sig == op.sig) {
              perf_fire(it->second.line, "dead-transfer", op.a,
                        "d2h into host buffer '" + op.a +
                            "' is overwritten by the identical d2h at line " +
                            std::to_string(op.line) + " with no host read of '" + op.a +
                            "' in between: the first copy's payload is never consumed",
                        "drop the first d2h (or read its payload before re-fetching)");
            }
            if (replay_depth == 0) d2h_unread_[op.a] = {op.line, op.sig};
            else d2h_unread_.erase(op.a);
          }
        } else {
          if (!op.a.empty()) d2h_unread_.erase(op.a);  // the copy reads the host source
          if (!op.dest.empty()) {
            const auto it = h2d_dest_unread_.find(op.dest);
            if (it != h2d_dest_unread_.end() && replay_depth == 0 && !op.sig.empty() &&
                it->second.sig == op.sig) {
              perf_fire(it->second.line, "dead-transfer", op.dest,
                        "h2d into device buffer '" + op.dest +
                            "' is overwritten by the identical h2d at line " +
                            std::to_string(op.line) +
                            " before any device op could read it: the first copy is dead",
                        "drop the first h2d (or move the device op that consumes it in "
                        "between)");
            }
            if (replay_depth == 0) h2d_dest_unread_[op.dest] = {op.line, op.sig};
            else h2d_dest_unread_.erase(op.dest);
          }
        }
        break;
      case Op::kEnqueue: {
        close_open_sync(false);
        last_task_ticket_ = ticket + 1;  // the ticket apply_enqueue is about to assign
        h2d_dest_unread_.clear();  // the task may read any device buffer
        for (const EffRoot& eff : op.effects) d2h_unread_.erase(eff.root);
        if (replay_depth > 0) {
          prev_enq_.valid = false;
          break;
        }
        // Same-label neighbours are batch siblings (a correction or
        // verification sweep): distributing a batch is the DevicePool's
        // job (§13), not a per-pair wait_event rewrite.
        const bool eligible = op.a != "?" && !op.effects.empty() && !op.b.empty();
        if (eligible && prev_enq_.valid && prev_enq_.ticket == ticket &&
            prev_enq_.stream == op.b && prev_enq_.label != op.a &&
            !footprints_conflict(prev_enq_.effects, op.effects)) {
          perf_fire(op.line, "false-serialization", prev_enq_.label + "/" + op.a,
                    "tasks \"" + prev_enq_.label + "\" (line " +
                        std::to_string(prev_enq_.line) + ") and \"" + op.a +
                        "\" run back-to-back on stream '" + op.b +
                        "' with disjoint declared footprints: FIFO order serializes work "
                        "that could overlap",
                    "enqueue one of the pair on a second stream (or pool member) and order "
                    "only genuine conflicts with record()/wait_event()",
                    {prev_enq_.label, op.a});
        }
        if (eligible) {
          prev_enq_.valid = true;
          prev_enq_.ticket = ticket + 1;  // the ticket apply_enqueue is about to assign
          prev_enq_.stream = op.b;
          prev_enq_.label = op.a;
          prev_enq_.line = op.line;
          prev_enq_.effects = op.effects;
        } else {
          prev_enq_.valid = false;
        }
        break;
      }
      case Op::kRecord:
        close_open_sync(false);
        prev_enq_.valid = false;
        break;
      case Op::kWaitEvent: {
        close_open_sync(false);
        prev_enq_.valid = false;
        if (replay_depth > 0) break;
        const auto it = events.find(op.a);
        if (it == events.end() || op.b.empty() || it->second.stream.empty()) break;
        const std::size_t slot = perf_slot(op.line, "redundant-wait", op.a);
        PerfCand& c = perf_cands[slot];
        bool redundant = it->second.stream == op.b;  // same-stream FIFO already orders it
        std::string why = "the Event was recorded on the consumer's own stream, whose FIFO "
                          "order already provides the edge";
        if (!redundant) {
          const auto ci = xedges.find(op.b);
          if (ci != xedges.end()) {
            const auto ei = ci->second.find(it->second.stream);
            if (ei != ci->second.end() && ei->second >= it->second.marker) {
              redundant = true;
              why = "an earlier wait_event already carries an edge at/after this marker "
                    "from the producer's stream";
            }
          }
        }
        if (redundant) {
          c.fired = true;
          if (c.message.empty()) {
            c.message = "wait_event on Event '" + op.a + "' orders nothing new: " + why;
            c.fixit = "drop the wait_event (the happens-before edge it names already exists)";
          }
        } else {
          c.justified = true;
        }
        break;
      }
      case Op::kSync:
        close_open_sync(false);
        prev_enq_.valid = false;
        eval_sync_candidate(op);
        break;
      case Op::kWaitHost: {
        if (replay_depth > 0) break;
        if (op.n == 0) break;  // ready() is a poll, never a blocking edge
        const auto it = events.find(op.a);
        if (it == events.end()) break;
        // Pool-member Events are out of model: one symbolic ticket
        // counter across all member streams means a wait on stream A
        // can look retired by a wait on stream B (DESIGN.md §13).
        if (it->second.pool) break;
        const std::size_t slot = perf_slot(op.line, "redundant-wait", op.a);
        PerfCand& c = perf_cands[slot];
        if (it->second.marker <= synced) {
          c.fired = true;
          if (c.message.empty()) {
            c.message = "wait on Event '" + op.a + "' whose marker (ticket " +
                        std::to_string(it->second.marker) +
                        ") is already host-ordered (through ticket " + std::to_string(synced) +
                        ") on every path reaching it: the edge retires nothing and only "
                        "costs a host-device handshake";
            c.fixit = "drop the wait, or re-record the Event after the work it is meant to "
                      "guard";
          }
        } else {
          c.justified = true;
        }
        break;
      }
      case Op::kHostTouch:
        if (osync_.open && osync_.flavor == 'd' && op.flag &&
            osync_.h2d_roots.count(op.a) > 0) {
          close_open_sync(true);  // the barrier guarded this rewrite of the h2d source
        }
        d2h_unread_.erase(op.a);
        break;
      case Op::kHostView:
        if (osync_.open) close_open_sync(op.scope >= 0 && op.scope == osync_.scope);
        d2h_unread_.clear();
        h2d_dest_unread_.clear();
        break;
      default: break;
    }
  }

  // ---- pass-1 op emission -----------------------------------------------

  void emit(Op op) {
    if (sink == nullptr) return;
    if (op.kind == Op::kTick && !sink->empty() && sink->back().kind == Op::kTick) {
      sink->back().n += op.n;  // coalesce runs of anonymous device ops
      return;
    }
    if (op.kind == Op::kHostTouch) {
      // Summaries carry only the touches a caller could alias: the
      // function's parameters and class members (trailing underscore).
      // Keep the first read and first write per root — the earliest
      // touch is the one with the fewest retirements before it, so if
      // it does not race at a call site, no later one can.
      const bool aliasable =
          ends_with(op.a, "_") ||
          std::find(cur_params_.begin(), cur_params_.end(), op.a) != cur_params_.end();
      if (!aliasable) return;
      for (const Op& prev : *sink)
        if (prev.kind == Op::kHostTouch && prev.a == op.a && prev.flag == op.flag) return;
    }
    sink->push_back(std::move(op));
  }

  std::vector<std::string> cur_params_;  ///< pass-1: parameters of the function being summarized

  // ---- op application (shared by direct walking and summary replay) ------

  void apply_tick(const Op& op) { ticket += static_cast<std::uint64_t>(op.n); }

  void apply_transfer(const Op& op) {
    ++ticket;
    if (counting()) ++stats.transfers;
    // An h2d from host truth into protected checksum storage is the
    // re-encode marker the stale-checksum-write rule looks for.
    if (op.dir == 'h' && is_protected_chk_root(op.dest)) reencoded.insert(op.dest);
    if (op.flag) {
      // Synchronous copy = enqueue + synchronize(): everything earlier
      // (itself included) is host-ordered when the call returns.
      retire_all();
      return;
    }
    if (!op.a.empty())
      live.push_back({op.dir, op.a, op.b, ticket, op.line, replay_depth > 0, false});
  }

  const char* race_rule(const Transfer& tr) const {
    return tr.carried ? "loop-carried-race" : "transfer-race";
  }

  void apply_enqueue(const Op& op) {
    ++ticket;
    if (counting()) ++stats.enqueues;
    check_task_effects(op);
  }

  /// The declared-footprint checks: cross-stream/loop-carried races and
  /// stale checksum writes. Pool drivers (DESIGN.md §13): a task
  /// enqueued on one stream whose declared footprint covers the host
  /// side of a transfer still in flight on ANOTHER stream races it —
  /// FIFO order only covers same-stream pairs — unless a wait_event
  /// edge carries the producer's Event marker (recorded at/after the
  /// transfer) into the consumer's queue.
  void check_task_effects(const Op& op) {
    const std::string& consumer = op.b;
    for (const EffRoot& eff : op.effects) {
      if (eff.write && is_protected_chk_root(eff.root) && !reencode_all &&
          reencoded.count(eff.root) == 0) {
        report(anchor(op.line), "stale-checksum-write",
               "task \"" + op.a + "\" declares FTH_WRITES over the FT-protected checksum "
                   "storage '" + eff.root +
                   "' with no dominating re-encode since the last checksum comparison" +
                   via() + "; the maintained code would drift from what the next verify "
                   "compares (DESIGN.md §7)",
               "re-encode '" + eff.root +
                   "' from host truth (an h2d refresh, or an *encode* call) between the "
                   "last verify and this write");
      }
      if (consumer.empty()) continue;
      const Transfer* hit = nullptr;
      for (const auto& tr : live) {
        if (tr.root != eff.root || tr.stream.empty() || tr.stream == consumer) continue;
        if (tr.fresh && replay_depth > 0) continue;  // callee-internal pair, checked there
        const auto ci = xedges.find(consumer);
        bool covered = false;
        if (ci != xedges.end()) {
          const auto ei = ci->second.find(tr.stream);
          covered = ei != ci->second.end() && ei->second >= tr.ticket;
        }
        if (!covered) {
          hit = &tr;
          break;
        }
      }
      if (hit == nullptr) continue;
      const std::string nticket = std::to_string(hit->ticket);
      const char* rule = hit->carried ? "loop-carried-race" : "cross-stream-race";
      const std::string carried_note =
          hit->carried ? " of the previous loop iteration (the transfer crossed the "
                         "back-edge still in flight)"
                       : "";
      report(anchor(op.line), rule,
             "task \"" + op.a + "\" on stream '" + consumer + "' declares '" + eff.root +
                 "' while the " + (hit->dir == 'h' ? "h2d" : "d2h") +
                 " transfer enqueued at line " + std::to_string(hit->line) + carried_note +
                 " (ticket " + nticket + ") is still in flight on stream '" + hit->stream +
                 "': no wait_event edge orders the transfer first" + via(),
             consumer + ".wait_event(<Event recorded on '" + hit->stream +
                 "' at/after ticket " + nticket + ">) before enqueueing this task");
      drop_root(eff.root);  // one missing edge -> one finding, not one per task
    }
  }

  void apply_record(const Op& op) {
    ++ticket;  // the record marker is itself an enqueued task
    const bool pool = pool_streams.count(op.b) > 0 || contains(op.b, "pool");
    events[op.a] = {ticket, op.b, pool};
    if (counting()) ++stats.records;
  }

  void apply_wait_host(const Op& op) {
    const auto it = events.find(op.a);
    if (it == events.end()) return;  // unknown receiver: not an ordering edge
    if (!op.flag && it->second.pool) {
      report(anchor(op.line), "unbounded-pool-wait",
             "plain wait() on Event '" + op.a + "' recorded on DevicePool member stream '" +
                 it->second.stream + "'" + via() +
                 "; a lost device dooms its stream and a plain wait() hangs forever "
                 "(DESIGN.md §13)",
             "use wait_for(timeout) and treat a false return as the device-lost signal");
    }
    retire_through(it->second.marker);
    if (counting()) ++stats.waits;
  }

  void apply_wait_event(const Op& op) {
    ++ticket;  // the wait marker is itself an enqueued task
    const auto it = events.find(op.a);
    if (op.b.empty() || it == events.end()) return;
    const std::string& producer = it->second.stream;
    if (producer.empty()) return;
    std::uint64_t& thru = xedges[op.b][producer];
    if (it->second.marker > thru) thru = it->second.marker;
  }

  void apply_sync(const Op&) {
    retire_all();
    if (counting()) ++stats.syncs;
  }

  void apply_host_touch(const Op& op) {
    const Transfer* hit = nullptr;
    for (const auto& tr : live) {
      if (tr.root != op.a) continue;
      if (tr.fresh && replay_depth > 0) continue;  // callee-internal pair, checked there
      if (tr.dir == 'd') {  // d2h writes the host side: any mention races
        hit = &tr;
        break;
      }
      if (hit == nullptr) hit = &tr;  // h2d candidate; keep looking for a d2h
    }
    if (hit == nullptr) return;
    if (hit->dir == 'h' && !op.flag) return;  // h2d only reads host memory
    const std::string nticket = std::to_string(hit->ticket);
    const std::string carried_note =
        hit->carried ? " of the previous loop iteration (the transfer crossed the loop "
                       "back-edge still in flight)"
                     : "";
    report(anchor(op.line), race_rule(*hit),
           "host " + std::string(hit->dir == 'h' ? "write to '" : "access to '") + op.a +
               "' races the in-flight " + (hit->dir == 'h' ? "h2d" : "d2h") +
               " transfer enqueued at line " + std::to_string(hit->line) + carried_note +
               " (ticket " + nticket + "): no happens-before edge orders the transfer first" +
               via(),
           "wait on an Event recorded at/after ticket " + nticket +
               " of the stream (or synchronize()) before this access");
    drop_root(op.a);  // one missing edge -> one finding, not one per mention
  }

  void apply_host_view(const Op& op) {
    if (synced >= ticket) return;
    report(anchor(op.line), "stream-not-idle",
           "hybrid::host_view() reached with enqueued work possibly in flight "
           "(tail ticket " +
               std::to_string(ticket) + ", host-ordered through " + std::to_string(synced) +
               ")" + via(),
           "synchronize() the stream (or wait on an Event recorded at/after ticket " +
               std::to_string(ticket) + ") before taking a host view");
    retire_all();  // the runtime gate would stop here; avoid cascades
  }

  void apply_op(const Op& op) {
    perf_pre(op);
    switch (op.kind) {
      case Op::kTick: apply_tick(op); break;
      case Op::kTransfer: apply_transfer(op); break;
      case Op::kEnqueue: apply_enqueue(op); break;
      case Op::kRecord: apply_record(op); break;
      case Op::kWaitHost: apply_wait_host(op); break;
      case Op::kWaitEvent: apply_wait_event(op); break;
      case Op::kSync: apply_sync(op); break;
      case Op::kHostTouch: apply_host_touch(op); break;
      case Op::kHostView: apply_host_view(op); break;
      case Op::kEncode: reencode_all = true; break;
      case Op::kVerify:
        reencoded.clear();
        reencode_all = false;
        break;
      case Op::kCall: break;  // resolved away before application
    }
  }

  /// Emit (pass 1) and apply an op. Application runs in both passes so
  /// pass-1 state (event/pool-stream bindings) is available when
  /// marking summary ops; findings are suppressed while summarizing.
  void step(Op op) {
    emit(op);
    apply_op(op);
  }

  // ---- summary resolution -------------------------------------------------

  /// Substitute callee-local names for call-site names: parameters map
  /// to argument roots, members (trailing `_`) are shared state and
  /// pass through, everything else is prefixed with the callee name so
  /// helper locals can never collide with caller locals.
  static std::string subst_name(const std::string& name,
                                const std::map<std::string, std::string>& map,
                                const std::string& callee) {
    if (name.empty()) return name;
    const auto it = map.find(name);
    if (it != map.end()) return it->second;
    if (ends_with(name, "_")) return name;
    if (contains(name, "::")) return name;  // already qualified by a nested splice
    return callee + "::" + name;
  }

  static Op subst_op(Op op, const std::map<std::string, std::string>& map,
                     const std::string& callee) {
    op.a = subst_name(op.a, map, callee);
    op.b = subst_name(op.b, map, callee);
    op.dest = subst_name(op.dest, map, callee);
    for (EffRoot& eff : op.effects) eff.root = subst_name(eff.root, map, callee);
    for (std::string& arg : op.args) arg = subst_name(arg, map, callee);
    return op;
  }

  static std::map<std::string, std::string> param_map(const std::vector<std::string>& params,
                                                      const std::vector<std::string>& args) {
    std::map<std::string, std::string> map;
    for (std::size_t k = 0; k < params.size() && k < args.size(); ++k)
      if (!params[k].empty() && !args[k].empty()) map[params[k]] = args[k];
    return map;
  }

  /// Flatten kCall ops: splice each callee's resolved summary with
  /// argument substitution. Recursion/cycles degrade to a single tick
  /// (the call still advances the timeline) — the may-union stays
  /// conservative for everything a bounded expansion can see.
  void resolve_summary(const std::string& name) {
    Summary& sum = summaries.at(name);
    if (sum.resolved || sum.resolving) return;
    sum.resolving = true;
    for (const Op& op : sum.raw) {
      if (op.kind != Op::kCall) {
        sum.ops.push_back(op);
        continue;
      }
      const auto it = summaries.find(op.a);
      if (it == summaries.end() || it->second.resolving) {
        sum.ops.push_back({Op::kTick, op.line});
        continue;
      }
      resolve_summary(op.a);
      const auto map = param_map(it->second.params, op.args);
      for (const Op& callee_op : it->second.ops)
        sum.ops.push_back(subst_op(callee_op, map, op.a));
    }
    sum.resolving = false;
    sum.resolved = true;
  }

  /// Replay a callee's resolved ops at a call site. Transfers the
  /// callee starts are marked fresh for the duration (their pairs with
  /// callee-internal touches were checked when the callee's own body
  /// was analyzed); whatever is still live when the replay ends joins
  /// the caller's timeline as ordinary in-flight work.
  void splice_call(const std::string& callee, const std::vector<std::string>& args,
                   int call_line) {
    const Summary& sum = summaries.at(callee);
    const auto map = param_map(sum.params, args);
    const int prev_line = replay_line;
    const std::string prev_callee = replay_callee;
    ++replay_depth;
    replay_line = call_line;
    replay_callee = callee;
    if (counting()) ++stats.calls;
    for (const Op& op : sum.ops) apply_op(subst_op(op, map, callee));
    --replay_depth;
    replay_line = prev_line;
    replay_callee = prev_callee;
    if (replay_depth == 0)
      for (auto& tr : live) tr.fresh = false;
  }

  // ---- token-level recognizers (build the op, then step it) ---------------

  /// h2d destination writes into the gehrd checksum row iff it spells
  /// `d_e_ ... .block(n_, ...)` — the one device region whose stale
  /// copy silently corrupts detection (DESIGN.md §7).
  bool dest_is_chkrow(std::size_t b, std::size_t e) const {
    bool saw_de = false;
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind != Tok::Ident) continue;
      if (t[j].text == "d_e_") saw_de = true;
      if (saw_de && t[j].text == "block" && is_punct(j + 1, "(") && is_ident(j + 2) &&
          t[j + 2].text == "n_")
        return true;
    }
    return false;
  }

  std::size_t handle_transfer(const std::string& id, std::size_t i, std::size_t open) {
    const std::size_t close = close_paren(open);
    const bool is_async = ends_with(id, "_async");
    const char dir = id.find("h2d") != std::string::npos ? 'h' : 'd';
    const auto args = split_args(open, close);
    Op op{Op::kTransfer, t[i].line};
    op.dir = dir;
    op.flag = !is_async;
    if (!args.empty()) op.b = root_of(args[0].first, args[0].second);
    if (args.size() >= 3) {
      const auto& host_arg = dir == 'h' ? args[1] : args.back();
      op.a = root_of(host_arg.first, host_arg.second);
      // Full source+destination token signature: two copies are "the
      // same transfer" (dead-transfer rule) only when it matches.
      for (std::size_t j = args[1].first; j < args.back().second && j < t.size(); ++j) {
        op.sig += t[j].text;
        op.sig += ' ';
      }
      if (dir == 'h') {
        const auto& dest = args.back();
        op.dest = root_of(dest.first, dest.second);
        if (dest_is_chkrow(dest.first, dest.second) && op.a != "new_chkrow_" &&
            op.a != "ckpt_chkrow_") {
          report(t[i].line, "chkrow-reencode",
                 "h2d into the checksum row d_e_.block(n_, ...) sourced from '" + op.a +
                     "'; the row must be re-encoded from host data (new_chkrow_) or "
                     "restored from the rollback checkpoint (ckpt_chkrow_)");
        }
      }
    }
    step(std::move(op));
    return close;
  }

  std::size_t handle_enqueue(std::size_t i, std::size_t open) {
    const std::size_t close = close_paren(open);
    Op op{Op::kEnqueue, t[i].line};
    op.a = open + 1 < close && t[open + 1].kind == Tok::String ? t[open + 1].text : "?";
    op.b = i >= 2 && is_punct(i - 1, ".") && is_ident(i - 2) ? t[i - 2].text : "";
    // Locate the FTH_TASK_EFFECTS(...) declaration once: the
    // undeclared-task rule wants it present, the footprint rules read
    // the declared roots out of it.
    std::size_t fx = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].kind == Tok::Ident && t[j].text == "FTH_TASK_EFFECTS") {
        fx = j;
        break;
      }
    }
    if (effects_scoped && fx == 0) {
      report(t[i].line, "undeclared-task",
             "stream task \"" + op.a +
                 "\" enqueued without FTH_TASK_EFFECTS(...); declare its "
                 "FTH_READS/FTH_WRITES footprint so fth::analyze and "
                 "FTH_CHECK_EFFECTS=1 can see it");
    }
    for (std::size_t j = fx; fx != 0 && j < close; ++j) {
      if (t[j].kind != Tok::Ident ||
          (t[j].text != "FTH_READS" && t[j].text != "FTH_WRITES") || !is_punct(j + 1, "("))
        continue;
      const bool write = t[j].text == "FTH_WRITES";
      const std::size_t fo = j + 1;
      const std::size_t fc = close_paren(fo);
      for (const auto& arg : split_args(fo, fc)) {
        const std::string root = root_of(arg.first, arg.second);
        if (!root.empty()) op.effects.push_back({root, write});
      }
      j = fc;
    }
    // over-wide-effects (perf plane): a declared root the task lambda —
    // its capture list included — never mentions is a phantom
    // footprint: it manufactures ordering edges for nothing and blocks
    // the overlap the false-serialization rule looks for.
    if (perf && !summarizing && fx != 0 && is_punct(fx + 1, "(")) {
      const std::size_t decl_close = close_paren(fx + 1);
      // Local aliases bound earlier in the enclosing function: after
      // `auto ce = d_chke_.view();` a capture of `ce` in the lambda IS
      // a use of root d_chke_.
      std::map<std::string, std::set<std::string>> alias;
      for (const FuncDef& def : defs) {
        if (!(def.body_begin <= i && i < def.body_end)) continue;
        for (std::size_t j = def.body_begin; j < i; ++j) {
          if (!is_ident(j) || !is_punct(j + 1, "=")) continue;
          if (j > 0 && t[j - 1].kind == Tok::Punct &&
              (t[j - 1].text == "." || t[j - 1].text == "->" || t[j - 1].text == "::"))
            continue;
          std::set<std::string>& binds = alias[t[j].text];
          int pd = 0;
          for (std::size_t k = j + 2; k < i; ++k) {
            if (t[k].kind == Tok::Punct) {
              if (t[k].text == "(") ++pd;
              else if (t[k].text == ")") --pd;
              else if (t[k].text == ";" && pd <= 0) break;
            } else if (t[k].kind == Tok::Ident) {
              binds.insert(t[k].text);
            }
          }
        }
        break;
      }
      for (const EffRoot& eff : op.effects) {
        bool mentioned = false;
        for (std::size_t j = decl_close + 1; j < close && !mentioned; ++j) {
          if (t[j].kind != Tok::Ident) continue;
          if (t[j].text == eff.root) {
            mentioned = true;
            break;
          }
          const auto it = alias.find(t[j].text);
          mentioned = it != alias.end() && it->second.count(eff.root) > 0;
        }
        if (!mentioned) {
          perf_fire(t[i].line, "over-wide-effects", eff.root,
                    "task \"" + op.a + "\" declares " +
                        (eff.write ? "FTH_WRITES" : "FTH_READS") + " over '" + eff.root +
                        "' but the task body never mentions that root: the phantom "
                        "footprint manufactures happens-before edges and blocks overlap",
                    "narrow the FTH_TASK_EFFECTS declaration to the roots the body "
                    "actually unwraps");
        }
      }
    }
    step(std::move(op));
    return close;  // the task lambda runs in task context, not here
  }

  /// `Stream& sd = pool.stream(d)` binds a DevicePool member's stream:
  /// Events recorded on it may never be waited unbounded.
  void note_pool_stream_binding(std::size_t i) {
    // i is the `stream` identifier: ... sd = <receiver> . stream ( ...
    if (i < 4 || !(is_punct(i - 1, ".") || is_punct(i - 1, "->")) || !is_ident(i - 2)) return;
    if (!contains(t[i - 2].text, "pool")) return;
    if (!is_punct(i - 3, "=") || !is_ident(i - 4)) return;
    pool_streams.insert(t[i - 4].text);
  }

  /// The statement boundary that ends a brace-less loop body: the first
  /// `;` at paren depth 0 (a `for (...) stmt;` body is one statement).
  std::size_t statement_end(std::size_t b, std::size_t limit) const {
    int pd = 0;
    for (std::size_t j = b; j < limit && j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "(") ++pd;
      else if (t[j].text == ")") --pd;
      else if (t[j].text == "{") return close_brace(j) + 1;
      else if (t[j].text == ";" && pd == 0) return j;
    }
    return limit;
  }

  /// Walk a loop body twice: the two-iteration fixpoint (DESIGN.md
  /// §11.3). Transfers enqueued during iteration 1 and still live at
  /// the back-edge are marked carried; during iteration 2 a race
  /// against one reports loop-carried-race. Stats count iteration 1
  /// only; a loop body whose state is stationary (the repo's drivers,
  /// the lookahead pipeline) needs no further iterations.
  void walk_loop_body(std::size_t b, std::size_t e) {
    const std::uint64_t entry_ticket = ticket;
    // dead-transfer pairing never crosses an iteration boundary: a
    // loop re-issuing "the same" copy usually targets a different
    // block/member each trip (the pool scatter/gather loops).
    d2h_unread_.clear();
    h2d_dest_unread_.clear();
    walk_range(b, e);
    for (auto& tr : live)
      if (tr.ticket > entry_ticket) tr.carried = true;
    ++second_pass_depth;
    d2h_unread_.clear();
    h2d_dest_unread_.clear();
    walk_range(b, e);
    --second_pass_depth;
    for (auto& tr : live) tr.carried = false;
    d2h_unread_.clear();
    h2d_dest_unread_.clear();
  }

  // ---- the walker ---------------------------------------------------------

  void walk_range(std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e && i < t.size(); ++i) {
      const Token& tk = t[i];
      if (tk.kind != Tok::Ident) continue;
      const std::string& id = tk.text;
      const bool dotted = i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"));
      const std::size_t open = is_punct(i + 1, "(") ? i + 1 : 0;

      // Loop-carried pass (pass 2 only; pass 1 summarizes the body
      // linearly — its internal back-edges are its own analysis).
      if (!summarizing && is_loop_keyword(id)) {
        if ((id == "for" || id == "while") && open != 0) {
          const std::size_t hc = close_paren(open);
          walk_range(open + 1, hc);  // header: init/cond/incr are host code
          if (is_punct(hc + 1, ";")) {  // `do {...} while (...);` tail
            i = hc + 1;
            continue;
          }
          std::size_t bb, be;
          if (is_punct(hc + 1, "{")) {
            bb = hc + 2;
            be = close_brace(hc + 1);
          } else {
            bb = hc + 1;
            be = statement_end(hc + 1, e);
          }
          walk_loop_body(bb, be);
          i = be;
          continue;
        }
        if (id == "do" && is_punct(i + 1, "{")) {
          const std::size_t be = close_brace(i + 1);
          walk_loop_body(i + 2, be);
          i = be;  // the trailing while(...) header is walked as host code
          continue;
        }
      }

      if (open != 0 &&
          (id == "copy_h2d_async" || id == "copy_d2h_async" || id == "copy_h2d" ||
           id == "copy_d2h") &&
          is_call(open)) {
        i = handle_transfer(id, i, open);
        continue;
      }
      if (open != 0 && id == "enqueue" &&
          (dotted || (open + 1 < t.size() && t[open + 1].kind == Tok::String))) {
        i = handle_enqueue(i, open);
        continue;
      }
      if (open != 0 && dotted && id == "stream") {
        note_pool_stream_binding(i);
        // fall through: the receiver/arguments are ordinary host code
      }
      if (open != 0 && dotted && id == "record" && is_punct(open + 1, ")")) {
        if (i >= 4 && is_ident(i - 2) && is_punct(i - 3, "=") && is_ident(i - 4)) {
          Op op{Op::kRecord, tk.line};
          op.a = t[i - 4].text;
          op.b = t[i - 2].text;
          step(std::move(op));
        } else {
          step({Op::kTick, tk.line});  // unbound marker: a plain device op
        }
        i = open + 1;
        continue;
      }
      if (open != 0 && dotted && (id == "wait" || id == "ready" || id == "wait_for")) {
        // wait_for's timeout path returns false WITHOUT the edge; every
        // driver throws (device_lost) on that path, so straight-line
        // code after the call is ordered — same edge as wait(). ready()
        // is a non-blocking poll: an edge when true, never a hang.
        const std::string receiver = i >= 2 && is_ident(i - 2) ? t[i - 2].text : "";
        const bool member_or_param =
            ends_with(receiver, "_") ||
            std::find(cur_params_.begin(), cur_params_.end(), receiver) != cur_params_.end();
        if (events.count(receiver) > 0 || (summarizing && member_or_param)) {
          Op op{Op::kWaitHost, tk.line};
          op.a = receiver;
          op.flag = id != "wait";          // bounded (wait_for) or non-blocking (ready)
          op.n = id == "ready" ? 0 : 1;    // perf plane: polls are never redundant edges
          step(std::move(op));
          i = close_paren(open);
          continue;
        }
        // Unknown receiver (condition_variable etc.): not an ordering
        // edge; its arguments are plain host code, keep scanning.
        continue;
      }
      if (open != 0 && dotted && id == "wait_event") {
        const std::size_t close = close_paren(open);
        Op op{Op::kWaitEvent, tk.line};
        op.b = i >= 2 && is_ident(i - 2) ? t[i - 2].text : "";
        op.a = root_of(open + 1, close);
        step(std::move(op));
        i = close;
        continue;
      }
      if (open != 0 && dotted && id == "synchronize") {
        Op op{Op::kSync, tk.line};
        op.scope = i < scope_of.size() ? scope_of[i] : -1;
        op.b = i >= 2 && is_ident(i - 2) ? t[i - 2].text : "";
        step(std::move(op));
        i = close_paren(open);
        continue;
      }
      if (open != 0 && id == "host_view" && is_call(open)) {
        Op op{Op::kHostView, tk.line};
        op.scope = i < scope_of.size() ? scope_of[i] : -1;
        step(std::move(op));
        i = close_paren(open);
        continue;
      }
      if (dotted && id == "in_task") {
        report(tk.line, "in-task-context",
               ".in_task() outside an enqueued stream task; host code takes "
               "hybrid::host_view() after the stream drained");
        continue;
      }
      if (open != 0 && ends_with(id, "_async") && is_call(open)) {
        step({Op::kTick, tk.line});  // device kernel launch: FIFO-ordered, no host footprint
        i = close_paren(open);
        continue;
      }

      // Checksum-discipline markers: an *encode* call sanctions task
      // writes into protected storage until the next *verify* call (the
      // comparison the maintained code must agree with).
      const bool is_encode_call = open != 0 && contains(id, "encode");
      const bool is_verify_call = open != 0 && contains(id, "verify");
      if (is_encode_call) step({Op::kEncode, tk.line});
      if (is_verify_call) step({Op::kVerify, tk.line});

      // A call to a TU-local function: splice its summary into this
      // timeline instead of skipping it (DESIGN.md §11.3). Member
      // calls on other objects (`x.f()`) are out of reach by design.
      if (open != 0 && !dotted && !(i > 0 && is_punct(i - 1, "->")) &&
          !(i > 0 && is_punct(i - 1, "::")) && summaries.count(id) > 0 &&
          !(i > 0 && is_ident(i - 1) && t[i - 1].text != "return")) {
        const std::size_t close = close_paren(open);
        Op op{Op::kCall, tk.line};
        op.a = id;
        for (const auto& arg : split_args(open, close))
          op.args.push_back(root_of(arg.first, arg.second));
        if (summarizing) {
          emit(op);
          step({Op::kTick, tk.line});  // keep pass-1 state moving past the call
        } else {
          splice_call(op.a, op.args, tk.line);
        }
        i = close;
        continue;
      }

      if (is_encode_call || is_verify_call) {
        i = close_paren(open);
        continue;
      }

      // Plain host code: check the mention against the live set.
      if (i > 0 && t[i - 1].kind == Tok::Punct &&
          (t[i - 1].text == "." || t[i - 1].text == "->" || t[i - 1].text == "::"))
        continue;  // `x.id` / `ns::id` names a member of something else
      Op op{Op::kHostTouch, tk.line};
      op.a = id;
      op.flag = is_write(i);
      step(std::move(op));
    }
  }

  // ---- function discovery -------------------------------------------------

  /// Parameter names of the list whose `(` is at `po`: the last
  /// identifier of each argument range before any default `=`.
  std::vector<std::string> param_names(std::size_t po, std::size_t pc) {
    std::vector<std::string> names;
    for (const auto& arg : split_args(po, pc)) {
      std::string name;
      for (std::size_t j = arg.first; j < arg.second; ++j) {
        if (t[j].kind == Tok::Punct && t[j].text == "=") break;
        if (t[j].kind == Tok::Ident && !is_type_word(t[j].text)) name = t[j].text;
      }
      names.push_back(std::move(name));
    }
    return names;
  }

  /// Backward scan from the `)` that precedes a function body's `{` to
  /// its matching `(`, then the identifier before it is the function
  /// name (unqualified; empty for lambdas and operators).
  void find_definitions() {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(i, "{")) continue;
      if (!opens_function(i)) continue;
      // The `)` before the body (skipping qualifiers):
      std::size_t close = i - 1;
      while (close > 0 && t[close].kind == Tok::Ident) --close;
      if (!is_punct(close, ")")) continue;
      int d = 0;
      std::size_t open = close;
      while (open > 0) {
        if (t[open].kind == Tok::Punct) {
          if (t[open].text == ")") ++d;
          if (t[open].text == "(" && --d == 0) break;
        }
        --open;
      }
      // A constructor body's `{` is preceded by the `)` of the LAST
      // member initializer, not the parameter list: climb `name(args)`
      // groups back through the init list (`, name(args)` ...) until
      // the `:` that follows the real parameter list's `)`.
      while (open > 1 && is_ident(open - 1) &&
             (is_punct(open - 2, ",") || is_punct(open - 2, ":"))) {
        const std::size_t prev_close = open - 3;  // the `)` before `,`/`:`
        if (!is_punct(prev_close, ")")) break;
        int dd = 0;
        std::size_t po = prev_close;
        while (po > 0) {
          if (t[po].kind == Tok::Punct) {
            if (t[po].text == ")") ++dd;
            if (t[po].text == "(" && --dd == 0) break;
          }
          --po;
        }
        const bool was_ctor_params = is_punct(open - 2, ":");
        open = po;
        close = prev_close;
        if (was_ctor_params) break;
      }
      FuncDef def;
      if (open > 0 && is_ident(open - 1)) def.name = t[open - 1].text;
      def.params = param_names(open, close);
      def.body_begin = i + 1;
      def.body_end = close_brace(i);
      defs.push_back(std::move(def));
      i = defs.back().body_end;  // nested lambdas belong to this body
    }
  }

  // ---- driver -------------------------------------------------------------

  void run() {
    find_definitions();

    // Brace-scope map for the host_view-justifies-synchronize rule. Only
    // compound-STATEMENT braces open a scope: a brace-initializer (an
    // aggregate literal in an argument list, `Ctx{.a = b}`) is transparent,
    // so a host_view spelled inside one still counts as the enclosing
    // block's scope. A `{` is a statement block iff the previous token
    // could not end an expression needing a brace-init.
    scope_of.assign(t.size(), -1);
    {
      std::vector<int> stack;        // open statement scopes
      std::vector<char> is_scope;    // per open brace: did it push a scope?
      for (std::size_t i = 0; i < t.size(); ++i) {
        scope_of[i] = stack.empty() ? -1 : stack.back();
        if (t[i].kind != Tok::Punct) continue;
        if (t[i].text == "{") {
          bool stmt = i == 0;
          if (i > 0) {
            const std::string& p = t[i - 1].text;
            stmt = p == ")" || p == "{" || p == "}" || p == ";" || p == "]" ||
                   p == ":" || p == "else" || p == "do" || p == "try";
          }
          is_scope.push_back(stmt ? 1 : 0);
          if (stmt) stack.push_back(static_cast<int>(i));
        } else if (t[i].text == "}" && !is_scope.empty()) {
          if (is_scope.back() && !stack.empty()) stack.pop_back();
          is_scope.pop_back();
        }
      }
    }

    // Pass 1: one linear walk per function, emitting its op summary.
    summarizing = true;
    for (const FuncDef& def : defs) {
      if (def.name.empty()) continue;
      Summary& sum = summaries[def.name];  // redefinitions: last one wins
      sum = Summary{};
      sum.params = def.params;
      reset_function_state();
      cur_params_ = def.params;
      sink = &sum.raw;
      walk_range(def.body_begin, def.body_end);
      sink = nullptr;
    }
    summarizing = false;
    for (auto& [name, sum] : summaries) {
      (void)sum;
      resolve_summary(name);
    }

    // Pass 2: analyze every body with summaries spliced at call sites
    // and loop bodies walked twice.
    for (const FuncDef& def : defs) {
      reset_function_state();
      cur_params_ = def.params;
      ++stats.functions;
      walk_range(def.body_begin, def.body_end);
      // A synchronize() still open at function end retired more than
      // any host consumption in this function required.
      close_open_sync(false);
    }

    // Flush the deferred advisory candidates: fired on some path,
    // justified on none (DESIGN.md §11.5 soundness rule).
    if (perf) {
      std::vector<const PerfCand*> out;
      for (const PerfCand& c : perf_cands)
        if (c.fired && !c.justified && !c.message.empty()) out.push_back(&c);
      std::stable_sort(out.begin(), out.end(), [](const PerfCand* a, const PerfCand* b) {
        return a->line != b->line ? a->line < b->line : a->rule < b->rule;
      });
      for (const PerfCand* c : out) {
        Finding f;
        f.file = file;
        f.line = c->line;
        f.rule = c->rule;
        f.message = c->message;
        f.missing_edge = c->fixit;
        f.perf = true;
        f.tasks = c->tasks;
        findings.push_back(std::move(f));
      }
    }
  }
};

}  // namespace

bool in_scope(const std::string& rel_path) {
  if (!(ends_with(rel_path, ".hpp") || ends_with(rel_path, ".cpp"))) return false;
  return starts_with(rel_path, "src/hybrid/") || starts_with(rel_path, "src/ft/") ||
         starts_with(rel_path, "examples/") || starts_with(rel_path, "bench/");
}

namespace {

/// `// fth-perf: expect <rule> [<rule>...]` markers, scanned from the
/// raw text (the lexer drops comments): marker line -> expected rules.
/// A marker covers perf findings up to three lines below it, so it can
/// sit on the line above the flagged construct.
std::map<int, std::set<std::string>> expect_markers(const std::string& content) {
  std::map<int, std::set<std::string>> markers;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string text = content.substr(pos, eol - pos);
    const std::size_t m = text.find("fth-perf:");
    if (m != std::string::npos) {
      std::size_t k = text.find("expect", m);
      if (k != std::string::npos) {
        k += 6;
        while (k < text.size()) {
          while (k < text.size() && !(std::islower(static_cast<unsigned char>(text[k])))) ++k;
          std::size_t b = k;
          while (k < text.size() &&
                 (std::islower(static_cast<unsigned char>(text[k])) || text[k] == '-'))
            ++k;
          if (k > b) markers[line].insert(text.substr(b, k - b));
        }
      }
    }
    line += 1;
    pos = eol + 1;
    if (eol == content.size()) break;
  }
  return markers;
}

}  // namespace

std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& content,
                                    Stats* stats, const Options& opts) {
  if (!in_scope(rel_path)) return {};
  Engine engine;
  engine.file = rel_path;
  engine.t = lex(content);
  // stream.hpp's label-only forwarder is the sanctioned hatch for
  // generic tasks (tests, tools); everything in the drivers declares.
  engine.effects_scoped =
      (starts_with(rel_path, "src/hybrid/") || starts_with(rel_path, "src/ft/")) &&
      rel_path != "src/hybrid/stream.hpp";
  // The perf plane covers the drivers and examples only: bench/
  // serializes deliberately (a timed region must drain before the
  // clock stops), and the hybrid runtime core (device.cpp's
  // synchronous copy primitives, the stream/pool machinery) IS the
  // synchronization being rationed, not a consumer of it.
  engine.perf = opts.perf &&
                (starts_with(rel_path, "src/ft/") || starts_with(rel_path, "examples/") ||
                 (starts_with(rel_path, "src/hybrid/") && contains(rel_path, "hybrid_")));
  engine.run();
  if (stats != nullptr) stats->accumulate(engine.stats);
  if (engine.perf) {
    const auto markers = expect_markers(content);
    if (!markers.empty()) {
      for (Finding& f : engine.findings) {
        if (!f.perf) continue;
        for (int off = 0; off <= 3 && !f.expected; ++off) {
          const auto it = markers.find(f.line - off);
          f.expected = it != markers.end() && it->second.count(f.rule) > 0;
        }
      }
    }
  }
  return std::move(engine.findings);
}

std::string stats_lines(const Stats& stats, std::size_t files) {
  std::string out;
  const auto kv = [&out](const char* key, std::size_t value) {
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  kv("files", files);
  kv("functions", stats.functions);
  kv("enqueues", stats.enqueues);
  kv("transfers", stats.transfers);
  kv("records", stats.records);
  kv("waits", stats.waits);
  kv("syncs", stats.syncs);
  kv("calls", stats.calls);
  return out;
}

std::string format(const Finding& finding) {
  std::string out = finding.file;
  out += ':';
  out += std::to_string(finding.line);
  out += ": [";
  out += finding.rule;
  out += "] ";
  if (finding.expected) out += "(expected) ";
  out += finding.message;
  if (!finding.missing_edge.empty()) {
    out += finding.perf ? "\n    suggested: " : "\n    required: ";
    out += finding.missing_edge;
  }
  return out;
}

namespace {

/// JSON string escaping for the SARIF writer (control chars, quotes,
/// backslashes; the findings are ASCII by construction).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleDoc {
  const char* id;
  const char* text;
};

/// The §11.4 rule table, embedded so every SARIF log self-describes.
const RuleDoc kRules[] = {
    {"transfer-race",
     "host code touches the host side of an in-flight async transfer with no dominating "
     "Event wait / synchronize()"},
    {"loop-carried-race",
     "a transfer left in flight across a loop back-edge races an unsynchronized host touch "
     "or task footprint in the next iteration"},
    {"stream-not-idle",
     "hybrid::host_view() reached while enqueued work may still be in flight"},
    {"in-task-context", ".in_task() spelled outside an enqueued stream task lambda"},
    {"undeclared-task",
     "Stream::enqueue in src/hybrid/ or src/ft/ without an FTH_TASK_EFFECTS(...) declaration"},
    {"chkrow-reencode",
     "h2d into the gehrd checksum row from anything but the re-encoded row or the rollback "
     "checkpoint"},
    {"cross-stream-race",
     "a task's declared footprint covers the host side of a transfer in flight on another "
     "stream with no wait_event edge"},
    {"unbounded-pool-wait",
     "plain Event::wait() on an Event recorded on a DevicePool member's stream; a lost "
     "device hangs it forever — use wait_for(timeout)"},
    {"stale-checksum-write",
     "a task's FTH_WRITES covers FT-protected checksum storage with no dominating re-encode "
     "since the last checksum comparison"},
    // ---- §11.5 performance plane (advisory) ----
    {"redundant-wait",
     "an Event wait/wait_event whose marker is already host-ordered (or whose edge already "
     "exists) on every path reaching it: it retires nothing"},
    {"coarse-synchronize",
     "a full Stream::synchronize() where the symbolic state shows a narrower Event edge (or "
     "none at all) suffices for every host-visible obligation"},
    {"false-serialization",
     "two back-to-back tasks on one stream with disjoint declared FTH_TASK_EFFECTS "
     "footprints: FIFO order serializes work that could overlap"},
    {"over-wide-effects",
     "a declared FTH_READS/FTH_WRITES root the task body never mentions: a phantom "
     "footprint that manufactures ordering edges"},
    {"dead-transfer",
     "a d2h/h2d whose destination is overwritten before anything reads it: the copy's "
     "payload is never consumed"},
};

int rule_index(const std::string& rule) {
  int k = 0;
  for (const RuleDoc& doc : kRules) {
    if (rule == doc.id) return k;
    ++k;
  }
  return -1;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"fth_analyze\",\n"
      "          \"informationUri\": \"DESIGN.md\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const RuleDoc& doc : kRules) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"";
    out += doc.id;
    out += "\", \"shortDescription\": {\"text\": \"";
    out += json_escape(doc.text);
    out += "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    std::string text = f.message;
    if (!f.missing_edge.empty()) {
      text += f.perf ? " — suggested: " : " — required: ";
      text += f.missing_edge;
    }
    if (f.expected) text += " [expected: fth-perf marker]";
    out += "        {\n          \"ruleId\": \"";
    out += json_escape(f.rule);
    out += "\",\n";
    const int idx = rule_index(f.rule);
    if (idx >= 0) {
      out += "          \"ruleIndex\": ";
      out += std::to_string(idx);
      out += ",\n";
    }
    out += "          \"level\": \"";
    out += f.perf ? "note" : "error";
    out += "\",\n          \"message\": {\"text\": \"";
    out += json_escape(text);
    out +=
        "\"},\n          \"locations\": [\n            {\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"";
    out += json_escape(f.file);
    out += "\"}, \"region\": {\"startLine\": ";
    out += std::to_string(f.line);
    out += "}}}";
    // Perf findings carry their fix-it as a SARIF fix span anchored on
    // the flagged line, so CI renders the suggestion inline.
    if (f.perf && !f.missing_edge.empty()) {
      out += ",\n          \"fixes\": [\n            {\"description\": {\"text\": \"";
      out += json_escape(f.missing_edge);
      out += "\"},\n             \"artifactChanges\": [{\"artifactLocation\": {\"uri\": \"";
      out += json_escape(f.file);
      out += "\"}, \"replacements\": [{\"deletedRegion\": {\"startLine\": ";
      out += std::to_string(f.line);
      out += "}}]}]}\n          ]";
    }
    out += "\n        }";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace fth::check::analyze

#include "check/analyze.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/analyze_lex.hpp"

namespace fth::check::analyze {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Words that cannot be the host-buffer root of a transfer argument:
/// type spellings, namespaces, and qualifiers that precede the actual
/// variable in expressions like `a.view(...)` or `host.cview()`.
bool is_type_word(const std::string& id) {
  static const std::set<std::string> kWords = {
      "MatrixView", "VectorView", "DMatrixView", "DVectorView",
      "Matrix",     "Vector",     "const",       "double",
      "float",      "int",        "auto",        "void",
      "char",       "bool",       "unsigned",    "index_t",
      "std",        "hybrid",     "detail",      "lapack",
      "blas",       "check",      "fth",         "static_cast",
      "size_t",     "uint64_t",   "int64_t",
  };
  return kWords.count(id) > 0;
}

/// One still-in-flight asynchronous copy: the symbolic analogue of the
/// runtime checker's transfer table (access.cpp host_touch_locked).
struct Transfer {
  char dir = 'h';    ///< 'h' = h2d (host side is read), 'd' = d2h (host side is written)
  std::string root;  ///< host-buffer root symbol, e.g. y_host
  std::string stream;  ///< stream argument's root symbol, e.g. s_ / sd (pool drivers)
  std::uint64_t ticket = 0;
  int line = 0;  ///< line the copy was enqueued on
};

struct Engine {
  std::string file;
  std::vector<Token> t;
  std::vector<Finding> findings;
  Stats stats;
  bool effects_scoped = false;  ///< undeclared-task rule applies to this file

  // ---- per-function symbolic stream state ----
  std::uint64_t ticket = 0;  ///< tickets issued so far (tail of the stream)
  std::uint64_t synced = 0;  ///< highest ticket known host-ordered
  std::vector<Transfer> live;
  std::map<std::string, std::uint64_t> events;  ///< Event name -> marker ticket
  /// Event name -> stream the record() ran on; pool drivers use this to
  /// prove cross-stream wait_event edges (DESIGN.md §13).
  std::map<std::string, std::string> event_stream;
  /// consumer stream -> producer stream -> highest marker ticket a
  /// wait_event edge carries across. Device-side ordering, so host
  /// retirement (synced) never changes it.
  std::map<std::string, std::map<std::string, std::uint64_t>> xedges;
  std::set<std::string> dedupe;

  void reset_function_state() {
    ticket = 0;
    synced = 0;
    live.clear();
    events.clear();
    event_stream.clear();
    xedges.clear();
  }

  // ---- token helpers ----
  bool is_punct(std::size_t i, const char* p) const {
    return i < t.size() && t[i].kind == Tok::Punct && t[i].text == p;
  }
  bool is_ident(std::size_t i) const { return i < t.size() && t[i].kind == Tok::Ident; }

  /// Index of the `)` matching the `(` at `open` (paren depth only;
  /// literals are already tokenized away). Clamps on imbalance.
  std::size_t close_paren(std::size_t open) const {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "(") {
        ++d;
      } else if (t[j].text == ")") {
        if (--d == 0) return j;
      }
    }
    return t.empty() ? 0 : t.size() - 1;
  }

  std::size_t close_square(std::size_t open) const {
    int d = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      if (t[j].text == "[") {
        ++d;
      } else if (t[j].text == "]") {
        if (--d == 0) return j;
      }
    }
    return t.empty() ? 0 : t.size() - 1;
  }

  /// Top-level argument ranges of the call whose `(` is at `open`.
  /// Commas nested in parens, braces (lambda bodies) or squares
  /// (captures, subscripts) do not split.
  std::vector<std::pair<std::size_t, std::size_t>> split_args(std::size_t open,
                                                              std::size_t close) const {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int pd = 0, bd = 0, sd = 0;
    std::size_t b = open + 1;
    for (std::size_t j = open; j <= close && j < t.size(); ++j) {
      if (t[j].kind != Tok::Punct) continue;
      const std::string& x = t[j].text;
      if (x == "(") {
        ++pd;
      } else if (x == ")") {
        if (--pd == 0) {
          if (j > b) args.push_back({b, j});
          break;
        }
      } else if (x == "{") {
        ++bd;
      } else if (x == "}") {
        --bd;
      } else if (x == "[") {
        ++sd;
      } else if (x == "]") {
        --sd;
      } else if (x == "," && pd == 1 && bd == 0 && sd == 0) {
        args.push_back({b, j});
        b = j + 1;
      }
    }
    return args;
  }

  /// A `(` at `open` is a *call* (not a declaration) iff the first
  /// argument reads like an expression: an identifier followed by `,`
  /// or `.`. Parameter lists read `Type& name` / `MatrixView<...>`.
  bool is_call(std::size_t open) const {
    return is_ident(open + 1) && (is_punct(open + 2, ",") || is_punct(open + 2, "."));
  }

  /// The `{` at `bi` opens a function body iff, skipping trailing
  /// cv/noexcept-style qualifiers, it is preceded by `)`. Namespace,
  /// class and initializer braces are preceded by identifiers or `=`.
  bool opens_function(std::size_t bi) const {
    if (bi == 0) return false;
    std::size_t j = bi - 1;
    while (j > 0 && t[j].kind == Tok::Ident &&
           (t[j].text == "const" || t[j].text == "noexcept" || t[j].text == "override" ||
            t[j].text == "final" || t[j].text == "mutable"))
      --j;
    return t[j].kind == Tok::Punct && t[j].text == ")";
  }

  /// First plausible host-buffer symbol in an argument range: an
  /// identifier that is not a type/namespace word, not qualified
  /// (`x::`) or templated (`x<`), and stands where a variable would
  /// (`a`, `a.view(...)`, `a[...]`).
  std::string root_of(std::size_t b, std::size_t e) const {
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind != Tok::Ident) continue;
      const std::string& id = t[j].text;
      if (is_type_word(id)) continue;
      if (j + 1 < e && t[j + 1].kind == Tok::Punct &&
          (t[j + 1].text == "::" || t[j + 1].text == "<"))
        continue;
      if (j + 1 >= e) return id;
      if (t[j + 1].kind == Tok::Punct) {
        const std::string& nx = t[j + 1].text;
        if (nx == "." || nx == "," || nx == ")" || nx == "[") return id;
      }
    }
    return {};
  }

  /// Does the postfix expression starting at the identifier at `i` end
  /// up on the left of an assignment? Mirrors the runtime rule that a
  /// live h2d transfer races host *writes* only.
  bool is_write(std::size_t i) const {
    std::size_t j = i + 1;
    while (j < t.size() && t[j].kind == Tok::Punct) {
      if (t[j].text == "(") {
        j = close_paren(j) + 1;
      } else if (t[j].text == "[") {
        j = close_square(j) + 1;
      } else if ((t[j].text == "." || t[j].text == "->") && is_ident(j + 1)) {
        j += 2;
      } else {
        break;
      }
    }
    return j < t.size() && t[j].kind == Tok::Punct &&
           (t[j].text == "=" || t[j].text == "+=" || t[j].text == "-=" ||
            t[j].text == "*=" || t[j].text == "/=");
  }

  void report(int line, const char* rule, std::string message, std::string edge = {}) {
    std::string key = std::to_string(line);
    key += ':';
    key += rule;
    if (!dedupe.insert(std::move(key)).second) return;
    findings.push_back({file, line, rule, std::move(message), std::move(edge)});
  }

  // ---- symbolic stream operations ----

  void retire_through(std::uint64_t thru) {
    std::vector<Transfer> keep;
    for (auto& tr : live)
      if (tr.ticket > thru) keep.push_back(std::move(tr));
    live.swap(keep);
    if (thru > synced) synced = thru;
  }

  void retire_all() {
    live.clear();
    synced = ticket;
  }

  void drop_root(const std::string& root) {
    std::vector<Transfer> keep;
    for (auto& tr : live)
      if (tr.root != root) keep.push_back(std::move(tr));
    live.swap(keep);
  }

  /// h2d destination writes into the gehrd checksum row iff it spells
  /// `d_e_ ... .block(n_, ...)` — the one device region whose stale
  /// copy silently corrupts detection (DESIGN.md §7).
  bool dest_is_chkrow(std::size_t b, std::size_t e) const {
    bool saw_de = false;
    for (std::size_t j = b; j < e && j < t.size(); ++j) {
      if (t[j].kind != Tok::Ident) continue;
      if (t[j].text == "d_e_") saw_de = true;
      if (saw_de && t[j].text == "block" && is_punct(j + 1, "(") && is_ident(j + 2) &&
          t[j + 2].text == "n_")
        return true;
    }
    return false;
  }

  std::size_t handle_transfer(const std::string& id, std::size_t i, std::size_t open) {
    const std::size_t close = close_paren(open);
    const bool is_async = ends_with(id, "_async");
    const char dir = id.find("h2d") != std::string::npos ? 'h' : 'd';
    ++ticket;
    ++stats.transfers;
    const auto args = split_args(open, close);
    std::string root;
    std::string stream;
    if (!args.empty()) stream = root_of(args[0].first, args[0].second);
    if (args.size() >= 3) {
      const auto& host_arg = dir == 'h' ? args[1] : args.back();
      root = root_of(host_arg.first, host_arg.second);
      if (dir == 'h') {
        const auto& dest = args.back();
        if (dest_is_chkrow(dest.first, dest.second) && root != "new_chkrow_" &&
            root != "ckpt_chkrow_") {
          report(t[i].line, "chkrow-reencode",
                 "h2d into the checksum row d_e_.block(n_, ...) sourced from '" + root +
                     "'; the row must be re-encoded from host data (new_chkrow_) or "
                     "restored from the rollback checkpoint (ckpt_chkrow_)");
        }
      }
    }
    if (is_async) {
      if (!root.empty()) live.push_back({dir, root, stream, ticket, t[i].line});
    } else {
      // Synchronous copy = enqueue + synchronize(): everything earlier
      // (itself included) is host-ordered when the call returns.
      retire_all();
    }
    return close;
  }

  std::size_t handle_enqueue(std::size_t i, std::size_t open) {
    const std::size_t close = close_paren(open);
    ++ticket;
    ++stats.enqueues;
    // Locate the FTH_TASK_EFFECTS(...) declaration once: the
    // undeclared-task rule wants it present, the cross-stream rule
    // reads the declared footprint out of it.
    std::size_t fx = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].kind == Tok::Ident && t[j].text == "FTH_TASK_EFFECTS") {
        fx = j;
        break;
      }
    }
    if (effects_scoped && fx == 0) {
      const std::string label =
          open + 1 < close && t[open + 1].kind == Tok::String ? t[open + 1].text : "?";
      report(t[i].line, "undeclared-task",
             "stream task \"" + label +
                 "\" enqueued without FTH_TASK_EFFECTS(...); declare its "
                 "FTH_READS/FTH_WRITES footprint so fth::analyze and "
                 "FTH_CHECK_EFFECTS=1 can see it");
    }
    if (fx != 0) check_cross_stream(i, open, close, fx);
    return close;  // the task lambda runs in task context, not here
  }

  /// Pool drivers (DESIGN.md §13): a task enqueued on one stream whose
  /// declared footprint covers the host side of a transfer still in
  /// flight on ANOTHER stream races it — FIFO order only covers
  /// same-stream pairs — unless a wait_event edge carries the
  /// producer's Event marker (recorded at/after the transfer) into the
  /// consumer's queue. The single-stream analogue is transfer-race.
  void check_cross_stream(std::size_t i, std::size_t open, std::size_t close,
                          std::size_t fx) {
    const std::string consumer =
        i >= 2 && is_punct(i - 1, ".") && is_ident(i - 2) ? t[i - 2].text : "";
    if (consumer.empty() || live.empty()) return;
    const std::string label =
        open + 1 < close && t[open + 1].kind == Tok::String ? t[open + 1].text : "?";
    for (std::size_t j = fx; j < close; ++j) {
      if (t[j].kind != Tok::Ident ||
          (t[j].text != "FTH_READS" && t[j].text != "FTH_WRITES") || !is_punct(j + 1, "("))
        continue;
      const std::size_t fo = j + 1;
      const std::size_t fc = close_paren(fo);
      for (const auto& arg : split_args(fo, fc)) {
        const std::string root = root_of(arg.first, arg.second);
        if (root.empty()) continue;
        const Transfer* hit = nullptr;
        for (const auto& tr : live) {
          if (tr.root != root || tr.stream.empty() || tr.stream == consumer) continue;
          const auto ci = xedges.find(consumer);
          bool covered = false;
          if (ci != xedges.end()) {
            const auto ei = ci->second.find(tr.stream);
            covered = ei != ci->second.end() && ei->second >= tr.ticket;
          }
          if (!covered) {
            hit = &tr;
            break;
          }
        }
        if (hit == nullptr) continue;
        const std::string nticket = std::to_string(hit->ticket);
        report(t[i].line, "cross-stream-race",
               "task \"" + label + "\" on stream '" + consumer + "' declares '" + root +
                   "' while the " + (hit->dir == 'h' ? "h2d" : "d2h") +
                   " transfer enqueued at line " + std::to_string(hit->line) +
                   " (ticket " + nticket + ") is still in flight on stream '" +
                   hit->stream + "': no wait_event edge orders the transfer first",
               consumer + ".wait_event(<Event recorded on '" + hit->stream +
                   "' at/after ticket " + nticket + ">) before enqueueing this task");
        drop_root(root);  // one missing edge -> one finding, not one per task
      }
      j = fc;
    }
  }

  void handle_mention(std::size_t i) {
    const std::string& id = t[i].text;
    // `x.id` / `x->id` / `ns::id` names a member of something else,
    // never the tracked local buffer.
    if (i > 0 && t[i - 1].kind == Tok::Punct &&
        (t[i - 1].text == "." || t[i - 1].text == "->" || t[i - 1].text == "::"))
      return;
    const Transfer* hit = nullptr;
    for (const auto& tr : live) {
      if (tr.root != id) continue;
      if (tr.dir == 'd') {  // d2h writes the host side: any mention races
        hit = &tr;
        break;
      }
      if (hit == nullptr) hit = &tr;  // h2d candidate; keep looking for a d2h
    }
    if (hit == nullptr) return;
    if (hit->dir == 'h' && !is_write(i)) return;  // h2d only reads host memory
    const std::string nticket = std::to_string(hit->ticket);
    report(t[i].line, "transfer-race",
           "host " + std::string(hit->dir == 'h' ? "write to '" : "access to '") + id +
               "' races the in-flight " + (hit->dir == 'h' ? "h2d" : "d2h") +
               " transfer enqueued at line " + std::to_string(hit->line) + " (ticket " +
               nticket + "): no happens-before edge orders the transfer first",
           "wait on an Event recorded at/after ticket " + nticket +
               " of the stream (or synchronize()) before this access");
    drop_root(id);  // one missing edge -> one finding, not one per mention
  }

  void run() {
    int depth = 0;
    bool in_func = false;
    int func_depth = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Token& tk = t[i];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") {
          if (!in_func && opens_function(i)) {
            in_func = true;
            func_depth = depth;
            reset_function_state();
            ++stats.functions;
          }
          ++depth;
        } else if (tk.text == "}") {
          --depth;
          if (in_func && depth == func_depth) in_func = false;
        }
        continue;
      }
      if (!in_func || tk.kind != Tok::Ident) continue;

      const std::string& id = tk.text;
      const bool dotted = i > 0 && is_punct(i - 1, ".");
      const std::size_t open = is_punct(i + 1, "(") ? i + 1 : 0;

      if (open != 0 &&
          (id == "copy_h2d_async" || id == "copy_d2h_async" || id == "copy_h2d" ||
           id == "copy_d2h") &&
          is_call(open)) {
        i = handle_transfer(id, i, open);
        continue;
      }
      if (open != 0 && id == "enqueue" &&
          (dotted || (open + 1 < t.size() && t[open + 1].kind == Tok::String))) {
        i = handle_enqueue(i, open);
        continue;
      }
      if (open != 0 && dotted && id == "record" && is_punct(open + 1, ")")) {
        ++ticket;  // the record marker is itself an enqueued task
        if (i >= 4 && is_ident(i - 2) && is_punct(i - 3, "=") && is_ident(i - 4)) {
          events[t[i - 4].text] = ticket;
          event_stream[t[i - 4].text] = t[i - 2].text;
          ++stats.records;
        }
        i = open + 1;
        continue;
      }
      if (open != 0 && dotted && (id == "wait" || id == "ready" || id == "wait_for")) {
        // wait_for's timeout path returns false WITHOUT the edge; every
        // driver throws (device_lost) on that path, so straight-line
        // code after the call is ordered — same edge as wait().
        const std::string receiver = i >= 2 && is_ident(i - 2) ? t[i - 2].text : "";
        const auto it = events.find(receiver);
        if (it != events.end()) {
          retire_through(it->second);
          ++stats.waits;
          i = close_paren(open);
        }
        // Unknown receiver (condition_variable etc.): not an ordering
        // edge; its arguments are plain host code, keep scanning.
        continue;
      }
      if (open != 0 && dotted && id == "wait_event") {
        // consumer.wait_event(ev): a device-side edge — the consumer
        // stream's next tasks run after ev's marker on the producer.
        ++ticket;  // the wait marker is itself an enqueued task
        const std::string consumer = i >= 2 && is_ident(i - 2) ? t[i - 2].text : "";
        const std::size_t close = close_paren(open);
        const std::string ev = root_of(open + 1, close);
        const auto it = events.find(ev);
        if (!consumer.empty() && it != events.end()) {
          const std::string& producer = event_stream[ev];
          if (!producer.empty()) {
            std::uint64_t& thru = xedges[consumer][producer];
            if (it->second > thru) thru = it->second;
          }
        }
        i = close;
        continue;
      }
      if (open != 0 && dotted && id == "synchronize") {
        retire_all();
        ++stats.syncs;
        i = close_paren(open);
        continue;
      }
      if (open != 0 && id == "host_view" && is_call(open)) {
        if (synced < ticket) {
          report(tk.line, "stream-not-idle",
                 "hybrid::host_view() reached with enqueued work possibly in flight "
                 "(tail ticket " +
                     std::to_string(ticket) + ", host-ordered through " +
                     std::to_string(synced) + ")",
                 "synchronize() the stream (or wait on an Event recorded at/after "
                 "ticket " +
                     std::to_string(ticket) + ") before taking a host view");
          retire_all();  // the runtime gate would stop here; avoid cascades
        }
        i = close_paren(open);
        continue;
      }
      if (dotted && id == "in_task") {
        report(tk.line, "in-task-context",
               ".in_task() outside an enqueued stream task; host code takes "
               "hybrid::host_view() after the stream drained");
        continue;
      }
      if (open != 0 && ends_with(id, "_async") && is_call(open)) {
        ++ticket;  // device kernel launch: FIFO-ordered, no host footprint
        i = close_paren(open);
        continue;
      }
      handle_mention(i);
    }
  }
};

}  // namespace

bool in_scope(const std::string& rel_path) {
  if (!(ends_with(rel_path, ".hpp") || ends_with(rel_path, ".cpp"))) return false;
  return starts_with(rel_path, "src/hybrid/") || starts_with(rel_path, "src/ft/") ||
         starts_with(rel_path, "examples/") || starts_with(rel_path, "bench/");
}

std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& content,
                                    Stats* stats) {
  if (!in_scope(rel_path)) return {};
  Engine engine;
  engine.file = rel_path;
  engine.t = lex(content);
  // stream.hpp's label-only forwarder is the sanctioned hatch for
  // generic tasks (tests, tools); everything in the drivers declares.
  engine.effects_scoped =
      (starts_with(rel_path, "src/hybrid/") || starts_with(rel_path, "src/ft/")) &&
      rel_path != "src/hybrid/stream.hpp";
  engine.run();
  if (stats != nullptr) stats->accumulate(engine.stats);
  return std::move(engine.findings);
}

std::string format(const Finding& finding) {
  std::string out = finding.file;
  out += ':';
  out += std::to_string(finding.line);
  out += ": [";
  out += finding.rule;
  out += "] ";
  out += finding.message;
  if (!finding.missing_edge.empty()) {
    out += "\n    required: ";
    out += finding.missing_edge;
  }
  return out;
}

}  // namespace fth::check::analyze

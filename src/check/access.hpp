// fth::check — device-space access checker and happens-before race detector.
//
// Two invariants of the hybrid design (CLAUDE.md, DESIGN.md §7) are
// enforced here instead of merely documented:
//
//  1. Device memory is only dereferenced inside stream tasks or transfer
//     routines. The compile-time half is the MemSpace tag on
//     MatrixView/VectorView (a device-tagged view has no operator()/data();
//     see la/matrix.hpp). The runtime half validates every explicit unwrap
//     (.in_task(), hybrid::host_view) against the calling thread's context
//     and the tracked device-allocation registry.
//
//  2. Host code must not touch memory an enqueued async transfer reads or
//     writes until a happens-before edge orders the transfer before the
//     access (the U2 race class). The checker keeps a graph over stream
//     tasks, Event record/wait, and synchronize(): a transfer enqueued at
//     ticket k of stream S stays "in flight" until the HOST observes an
//     ordering edge covering k — completion on the worker alone does not
//     retire it. That makes detection deterministic: a missing wait_event
//     is reported on 100% of runs, independent of scheduler timing.
//
// Violations carry the allocation site (DeviceMatrix label), the current /
// offending task label (interned via obs::intern_name), and for races the
// exact missing edge ("wait an Event recorded at or after ticket N"). The
// first violation triggers a flight-recorder dump (obs/trace.hpp) and all
// of them bump the `check.violations` metric. FTH_CHECK_ABORT=1 upgrades
// unexpected violations to abort for CI. DESIGN.md §10 documents the model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/hooks.hpp"
#include "common/types.hpp"

namespace fth::check {

enum class ViolationKind {
  HostDerefDevice,     ///< device view unwrapped / device range accessed from host context
  HostViewOverDevice,  ///< host-space view constructed over device memory from host context
  TransferRace,        ///< host touched memory of an in-flight transfer without an ordering edge
  StreamNotIdle,       ///< host_view(view, stream) taken while the stream still had work queued
  EffectMismatch,      ///< task accessed memory outside its declared FTH_READS/FTH_WRITES set
  CrossDeviceAccess,   ///< task (or host_view gate) on one device touched another device's memory
};

const char* to_string(ViolationKind k) noexcept;

/// One detected violation. `alloc_site` / `task_label` are interned or
/// static strings ("" when unknown).
struct Violation {
  ViolationKind kind = ViolationKind::HostDerefDevice;
  std::string message;            ///< full human-readable report line
  const char* alloc_site = "";    ///< DeviceMatrix / raw_allocate label, if the range is tracked
  const char* task_label = "";    ///< label of the racing transfer / current task
  std::uint64_t ticket = 0;       ///< stream ticket of the racing transfer (races only)
  std::string missing_edge;       ///< the happens-before edge that would fix it (races only)
};

/// Runtime switch (meaningful only when compiled_in()). Defaults to on,
/// overridable with FTH_CHECK=0/1 in the environment.
void set_active(bool on) noexcept;

/// Effect-conformance mode: when on (FTH_CHECK_EFFECTS=1, or
/// set_effects_active(true)), every device-view unwrap inside a task that
/// declared FTH_TASK_EFFECTS must land inside a declared range, else an
/// EffectMismatch violation is reported. Off by default — declarations are
/// free to carry, the conformance sweep is opt-in per run. Compiled-out
/// builds: effects_active() is constant false and set_effects_active a
/// no-op (asserted by fth_checkinfo --expect-off).
void set_effects_active(bool on) noexcept;
bool effects_active() noexcept;

/// Total violations recorded since process start (monotonic, survives
/// take_violations()).
std::uint64_t violation_count() noexcept;

/// Drain and return the recorded violations (bounded; the first
/// kMaxStoredViolations are kept, the count keeps incrementing beyond).
std::vector<Violation> take_violations();

/// Scoped expectation for seeded-violation self-tests: while at least one
/// scope is alive, violations are still recorded and counted but neither
/// printed to stderr nor escalated to abort (FTH_CHECK_ABORT). Scopes may
/// nest; taken() drains only violations recorded since this scope opened.
class ExpectViolations {
 public:
  ExpectViolations();
  ~ExpectViolations();
  ExpectViolations(const ExpectViolations&) = delete;
  ExpectViolations& operator=(const ExpectViolations&) = delete;

  /// Violations recorded since construction (drains them from the store).
  std::vector<Violation> taken();

 private:
  std::uint64_t start_count_ = 0;
};

// --- Runtime wiring (called by hybrid::Stream / Device / transfers). -------
// All of these are cheap no-op stubs when the checker is compiled out, and
// bail on one relaxed load when compiled in but inactive.

#if FTH_CHECK_ENABLED

/// Register / release a device allocation. `site` must be a static or
/// interned string; it becomes the "allocation site" of every report that
/// touches the range. Each registration gets a fresh epoch. `device` is
/// the owning device's pool ordinal (-1 = untagged): when both the current
/// task context and the allocation carry an ordinal and they differ, the
/// unwrap is a CrossDeviceAccess violation — pool members are independent
/// memory spaces.
void on_device_alloc(const void* p, std::size_t bytes, const char* site,
                     int device = -1) noexcept;
void on_device_free(const void* p) noexcept;

/// RAII worker-thread task context (stream worker loop, between-task hooks).
/// `effects` (may be null) is the task's declared FTH_TASK_EFFECTS set; it
/// must outlive the scope (the stream's Task object does).
class TaskScope {
 public:
  TaskScope(const void* stream, const char* label, std::uint64_t ticket,
            const TaskEffects* effects = nullptr, int device = -1) noexcept {
    auto& ctx = detail::t_ctx;
    prev_ = ctx;
    ctx.stream = stream;
    ctx.task_label = label;
    ctx.ticket = ticket;
    ctx.effects = effects;
    ctx.device = device;
    ++ctx.depth;
  }
  ~TaskScope() { detail::t_ctx = prev_; }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  detail::ThreadCtx prev_;
};

/// An async transfer was enqueued at `ticket` on `stream`. The host-side
/// rectangle {p, rows, cols, ld} (elements of size `elem`) becomes a live
/// range; `host_is_dst` tells the conflict rule (d2h writes the host range,
/// so even host reads race; h2d only reads it, so host reads are fine).
/// `dev_base` is the device side, used to resolve the allocation site.
void on_transfer_enqueued(const void* stream, std::uint64_t ticket, bool host_is_dst,
                          const char* label, const void* p, std::size_t elem,
                          index_t rows, index_t cols, index_t ld,
                          const void* dev_base) noexcept;

/// The HOST thread observed completion of everything up to `ticket` on
/// `stream` (Event::wait / Event::ready()==true on an event recorded at
/// `ticket`, or Stream::synchronize covering the tail). Retires transfers
/// and propagates cross-stream edges.
void on_host_ordered(const void* stream, std::uint64_t ticket) noexcept;

/// A worker thread (stream `waiter`, inside the task at `wait_ticket`)
/// waits on an event recorded at `src_ticket` of `src`: once the host
/// orders `waiter` past `wait_ticket`, it has transitively ordered `src`
/// up to `src_ticket`.
void on_cross_stream_wait(const void* waiter, std::uint64_t wait_ticket,
                          const void* src, std::uint64_t src_ticket) noexcept;

/// Stream teardown: the destructor joins the worker after the queue
/// drains, which is a host-side ordering of the whole stream.
void on_stream_destroyed(const void* stream, std::uint64_t tail_ticket) noexcept;

/// host_view(view, stream) gate: flags when the stream was not idle, and
/// (when both ids are tagged) when the stream belongs to a different
/// device than the allocation — an idle stream on device 0 grants no
/// host-exclusive window over device 1's memory.
void require_stream_idle(bool idle, const void* p, const char* what,
                         int device = -1) noexcept;

#else

class TaskScope {
 public:
  TaskScope(const void*, const char*, std::uint64_t,
            const TaskEffects* = nullptr, int = -1) noexcept {}
};
inline void on_device_alloc(const void*, std::size_t, const char*, int = -1) noexcept {}
inline void on_device_free(const void*) noexcept {}
inline void on_transfer_enqueued(const void*, std::uint64_t, bool, const char*,
                                 const void*, std::size_t, index_t, index_t,
                                 index_t, const void*) noexcept {}
inline void on_host_ordered(const void*, std::uint64_t) noexcept {}
inline void on_cross_stream_wait(const void*, std::uint64_t, const void*,
                                 std::uint64_t) noexcept {}
inline void on_stream_destroyed(const void*, std::uint64_t) noexcept {}
inline void require_stream_idle(bool, const void*, const char*, int = -1) noexcept {}

#endif  // FTH_CHECK_ENABLED

}  // namespace fth::check

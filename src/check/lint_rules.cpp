#include "check/lint_rules.hpp"

#include <cctype>
#include <regex>

namespace fth::check::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Split into lines with comments AND string/char-literal contents blanked
/// out (replaced by spaces so column positions survive). Handles // and
/// /* */ spanning lines. Literal contents are not code: a rule token quoted
/// in a message or a test seed must not fire the rule.
std::vector<std::string> code_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  enum class St { Code, Slash, Line, Block, BlockStar, Str, StrEsc, Chr, ChrEsc, RawDelim, Raw };
  St st = St::Code;
  std::string raw_delim;      // delimiter of the raw literal being scanned
  std::size_t raw_match = 0;  // delimiter chars matched after a ')' (Raw state)
  bool raw_matching = false;  // a ')' opened a close-sequence candidate
  // A '"' opens a *raw* literal iff the identifier characters immediately
  // before it are exactly a raw-string prefix (R, LR, uR, UR, u8R). A longer
  // identifier ending in R (e.g. FOOR"x") is an ordinary literal after a
  // macro/identifier token.
  const auto is_raw_prefix = [](const std::string& code) {
    std::size_t b = code.size();
    while (b > 0 && (std::isalnum(static_cast<unsigned char>(code[b - 1])) != 0 ||
                     code[b - 1] == '_'))
      --b;
    const std::string id = code.substr(b);
    return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
  };
  for (const char c : content) {
    if (c == '\n') {
      // Line comments end; block comments (and raw literals) continue
      // across the newline.
      if (st == St::Line || st == St::Slash) st = St::Code;
      lines.push_back(cur);
      cur.clear();
      continue;
    }
    switch (st) {
      case St::Code:
        if (c == '/') {
          st = St::Slash;
        } else {
          if (c == '"') {
            if (is_raw_prefix(cur)) {
              st = St::RawDelim;
              raw_delim.clear();
            } else {
              st = St::Str;
            }
          }
          if (c == '\'') st = St::Chr;
          cur.push_back(c);
        }
        break;
      case St::Slash:
        if (c == '/') {
          st = St::Line;
        } else if (c == '*') {
          st = St::Block;
          cur.push_back(' ');  // the '/' we held back
          cur.push_back(' ');
        } else {
          cur.push_back('/');
          if (c == '"') {
            if (is_raw_prefix(cur)) {
              st = St::RawDelim;
              raw_delim.clear();
            } else {
              st = St::Str;
            }
          } else if (c == '\'')
            st = St::Chr;
          else
            st = St::Code;
          if (st != St::Slash) cur.push_back(c);
        }
        break;
      case St::Line:
        break;  // drop
      case St::Block:
        if (c == '*') st = St::BlockStar;
        cur.push_back(' ');
        break;
      case St::BlockStar:
        if (c == '/') st = St::Code;
        else if (c != '*') st = St::Block;
        cur.push_back(' ');
        break;
      case St::Str:
        if (c == '\\') st = St::StrEsc;
        else if (c == '"') st = St::Code;
        cur.push_back(c == '"' ? c : ' ');
        break;
      case St::StrEsc:
        st = St::Str;
        cur.push_back(' ');
        break;
      case St::Chr:
        if (c == '\\') st = St::ChrEsc;
        else if (c == '\'') st = St::Code;
        cur.push_back(c == '\'' ? c : ' ');
        break;
      case St::ChrEsc:
        st = St::Chr;
        cur.push_back(' ');
        break;
      case St::RawDelim:
        // Collect the d-char-seq of R"delim( — everything up to the '('.
        if (c == '(') {
          st = St::Raw;
          raw_matching = false;
          raw_match = 0;
        } else {
          raw_delim.push_back(c);
        }
        cur.push_back(' ');
        break;
      case St::Raw:
        // No escapes inside a raw literal: it ends only at )delim". The
        // delimiter cannot contain ')', so a ')' always (re)opens the
        // close-sequence candidate.
        if (raw_matching && raw_match == raw_delim.size() && c == '"') {
          st = St::Code;
          cur.push_back('"');
          break;
        }
        if (raw_matching && raw_match < raw_delim.size() && c == raw_delim[raw_match]) {
          ++raw_match;
        } else {
          raw_matching = c == ')';
          raw_match = 0;
        }
        cur.push_back(' ');
        break;
    }
  }
  if (!cur.empty() || content.empty() || content.back() != '\n') lines.push_back(cur);
  return lines;
}

// ---- rule scopes ------------------------------------------------------------

/// Files allowed to spell the unchecked device-view escape hatches.
bool device_unwrap_allowed(const std::string& p) {
  return p == "src/la/matrix.hpp" ||          // defines the gates
         starts_with(p, "src/check/") ||      // the checker + these rules
         starts_with(p, "src/hybrid/") ||     // the runtime that owns the discipline
         p == "src/fault/fault_plane.hpp" ||  // worker-thread fire paths
         p == "src/fault/fault_plane.cpp" ||
         starts_with(p, "tests/check/");  // seeded-violation self-tests
}

/// Directories whose function signatures must use index_t for dimensions.
bool int_index_scoped(const std::string& p) {
  return starts_with(p, "src/la/") || starts_with(p, "src/lapack/") ||
         starts_with(p, "src/hybrid/") || starts_with(p, "src/ft/");
}

}  // namespace

bool in_scope(const std::string& rel_path) {
  if (!(ends_with(rel_path, ".hpp") || ends_with(rel_path, ".cpp"))) return false;
  return starts_with(rel_path, "src/") || starts_with(rel_path, "tests/") ||
         starts_with(rel_path, "tools/") || starts_with(rel_path, "examples/") ||
         starts_with(rel_path, "bench/");
}

std::vector<Issue> lint_file(const std::string& rel_path, const std::string& content) {
  std::vector<Issue> issues;
  if (!in_scope(rel_path)) return issues;

  // device-unwrap tokens. Plain substring search: these identifiers are
  // unambiguous and never legitimate outside the allowlist.
  static const struct {
    const char* token;
    const char* what;
  } kUnwrapTokens[] = {
      {".unchecked_host_view(", "unchecked device-view unwrap"},
      {".raw_data(", "raw device base-address access"},
      {"detail::unchecked_view", "hook-free view construction"},
      {"unchecked_view_t", "hook-free view constructor tag"},
  };

  // int-index: `int` in a parameter slot ("(" or "," directly before) with a
  // dimension-flavoured name and no initializer. Loop headers (`for (int k =
  // 0;`) carry the `=` and do not match.
  static const std::regex int_index_re(
      R"re([(,]\s*(?:const\s+)?int\s+(?:m|n|k|nb|ib|ld[a-z]{0,2}|rows|cols|row|col|inc[a-z]?|offset)\s*[,)])re");

  // naked-new-array: `new T[...]` (any type spelling).
  static const std::regex new_array_re(R"re(\bnew\s+[A-Za-z_][\w:<>,\s]*\[)re");

  // panel-impl: a `*_panel(` reference in src/lapack/ that is not a
  // qualified call (`detail::lahr2_panel(`). Unqualified spellings only
  // occur at the definitions, which belong in *_impl.hpp.
  static const std::regex panel_re(R"re((?:^|[^:\w])(\w+_panel)\s*\()re");

  const bool check_unwrap = !device_unwrap_allowed(rel_path);
  const bool check_int = int_index_scoped(rel_path);
  const bool check_panel =
      starts_with(rel_path, "src/lapack/") && !ends_with(rel_path, "_impl.hpp");

  const std::vector<std::string> lines = code_lines(content);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const int lineno = static_cast<int>(li) + 1;

    if (check_unwrap) {
      for (const auto& t : kUnwrapTokens) {
        if (line.find(t.token) != std::string::npos) {
          issues.push_back({rel_path, lineno, "device-unwrap",
                            std::string(t.what) +
                                " outside the src/hybrid allowlist; use .in_task() "
                                "inside a stream task or hybrid::host_view() after "
                                "the stream drained",
                            trim(line)});
          break;  // one report per line is enough
        }
      }
    }

    if (check_int && std::regex_search(line, int_index_re)) {
      issues.push_back({rel_path, lineno, "int-index",
                        "dimension/stride parameter typed int; LAPACK-subset "
                        "signatures take index_t (int64)",
                        trim(line)});
    }

    if (std::regex_search(line, new_array_re)) {
      issues.push_back({rel_path, lineno, "naked-new-array",
                        "naked new[]; use Matrix<T>/std::vector or "
                        "Device::raw_allocate so the storage is tracked",
                        trim(line)});
    }

    if (check_panel && std::regex_search(line, panel_re)) {
      issues.push_back({rel_path, lineno, "panel-impl",
                        "panel loop referenced unqualified outside *_impl.hpp; "
                        "panel kernels are defined only in the templated "
                        "*_impl.hpp headers and called as lapack::detail::*",
                        trim(line)});
    }
  }
  return issues;
}

std::string format(const Issue& issue) {
  std::string out = issue.file;
  out += ':';
  out += std::to_string(issue.line);
  out += ": [";
  out += issue.rule;
  out += "] ";
  out += issue.message;
  if (!issue.excerpt.empty()) {
    out += "\n    ";
    out += issue.excerpt;
  }
  return out;
}

}  // namespace fth::check::lint

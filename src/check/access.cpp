#include "check/access.hpp"

#include "check/effects.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fth::check {

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::HostDerefDevice: return "HostDerefDevice";
    case ViolationKind::HostViewOverDevice: return "HostViewOverDevice";
    case ViolationKind::TransferRace: return "TransferRace";
    case ViolationKind::StreamNotIdle: return "StreamNotIdle";
    case ViolationKind::EffectMismatch: return "EffectMismatch";
    case ViolationKind::CrossDeviceAccess: return "CrossDeviceAccess";
  }
  return "?";
}

#if FTH_CHECK_ENABLED

namespace detail {
std::atomic<bool> g_active{false};
std::atomic<std::uint32_t> g_live_transfers{0};
std::atomic<std::uint32_t> g_device_allocs{0};
}  // namespace detail

namespace {
/// Effect-conformance mode (FTH_CHECK_EFFECTS=1 / set_effects_active).
std::atomic<bool> g_effects_active{false};
}  // namespace

namespace {

constexpr std::size_t kMaxStoredViolations = 64;

/// One registered device allocation. `epoch` is a process-wide generation
/// counter so reports can distinguish reuse of a recycled address.
struct AllocRec {
  std::size_t bytes = 0;
  const char* site = "";
  std::uint64_t epoch = 0;
  int device = -1;  ///< owning pool ordinal (-1 = untagged single-device)
};

/// A column-major byte rectangle: columns of `row_bytes` at stride
/// `col_stride` from `base`. The unit of happens-before conflict tests.
struct Rect {
  const char* base = nullptr;
  std::size_t row_bytes = 0;    ///< live bytes per column
  std::size_t col_stride = 0;   ///< bytes between column starts (>= row_bytes)
  index_t cols = 0;
};

/// An enqueued-but-not-host-ordered async transfer.
struct TransferRec {
  const void* stream = nullptr;
  std::uint64_t ticket = 0;
  bool host_is_dst = false;  ///< d2h: the transfer *writes* the host range
  const char* label = "";
  const char* dev_site = "";
  Rect host;
};

/// A pending cross-stream edge: once the host orders `waiter` past
/// `wait_ticket`, it has transitively ordered `src` up to `src_ticket`.
struct CrossEdge {
  const void* waiter = nullptr;
  std::uint64_t wait_ticket = 0;
  const void* src = nullptr;
  std::uint64_t src_ticket = 0;
};

struct State {
  std::mutex m;
  std::map<const void*, AllocRec> allocs;      // keyed by base address
  std::uint64_t next_epoch = 1;
  std::vector<TransferRec> transfers;          // live (not host-ordered)
  std::map<const void*, std::uint64_t> hb;     // stream -> host-ordered ticket
  std::vector<CrossEdge> edges;
  std::deque<std::pair<std::uint64_t, Violation>> stored;  // (seq, violation)
  std::uint64_t seq = 0;                       // violations ever recorded
  std::atomic<int> expect_depth{0};
  bool abort_on_violation = false;
};

State& st() {
  static State s;
  return s;
}

/// Env init runs once before main via a static initializer; FTH_CHECK=0/1
/// overrides the compiled-in default (on).
struct EnvInit {
  EnvInit() {
    bool on = true;
    if (const char* e = std::getenv("FTH_CHECK"); e != nullptr)
      on = !(e[0] == '0' && e[1] == '\0');
    detail::g_active.store(on, std::memory_order_relaxed);
    if (const char* a = std::getenv("FTH_CHECK_ABORT"); a != nullptr)
      st().abort_on_violation = !(a[0] == '0' && a[1] == '\0');
    if (const char* f = std::getenv("FTH_CHECK_EFFECTS"); f != nullptr)
      g_effects_active.store(!(f[0] == '0' && f[1] == '\0'),
                             std::memory_order_relaxed);
  }
};
const EnvInit env_init;

Rect make_rect(const void* p, std::size_t elem, index_t rows, index_t cols,
               index_t ld) noexcept {
  Rect r;
  if (rows <= 0 || cols <= 0) return r;  // empty base stays null
  if (ld < 0) {  // normalize a negative stride (strided vectors as 1×n rects)
    p = static_cast<const char*>(p) + static_cast<std::ptrdiff_t>(cols - 1) * ld *
                                          static_cast<std::ptrdiff_t>(elem);
    ld = -ld;
  }
  r.base = static_cast<const char*>(p);
  r.row_bytes = static_cast<std::size_t>(rows) * elem;
  r.col_stride = static_cast<std::size_t>(ld) * elem;
  r.cols = cols;
  return r;
}

std::size_t rect_extent(const Rect& r) noexcept {
  if (r.base == nullptr) return 0;
  return static_cast<std::size_t>(r.cols - 1) * r.col_stride + r.row_bytes;
}

/// Does the flat byte range [q0, q1) hit any live byte of `r`? O(1).
bool range_hits_rect(const char* q0, const char* q1, const Rect& r) noexcept {
  const char* r0 = r.base;
  const char* r1 = r.base + rect_extent(r);
  if (q0 < r0) q0 = r0;
  if (q1 > r1) q1 = r1;
  if (q0 >= q1) return false;
  const std::size_t o0 = static_cast<std::size_t>(q0 - r0);
  const std::size_t o1 = static_cast<std::size_t>(q1 - 1 - r0);
  const std::size_t c0 = o0 / r.col_stride;
  const std::size_t c1 = o1 / r.col_stride;
  // Spanning a column boundary necessarily covers row 0 of column c0+1.
  if (c0 != c1) return true;
  return o0 - c0 * r.col_stride < r.row_bytes;
}

/// Exact overlap of two column-major rectangles: walk the columns of the
/// narrower one (bounded by an O(1) flat-range disjointness bail-out).
bool rects_overlap(const Rect& a, const Rect& b) noexcept {
  if (a.base == nullptr || b.base == nullptr) return false;
  const char* a1 = a.base + rect_extent(a);
  const char* b1 = b.base + rect_extent(b);
  if (a1 <= b.base || b1 <= a.base) return false;
  const Rect& walk = a.cols <= b.cols ? a : b;
  const Rect& other = a.cols <= b.cols ? b : a;
  for (index_t j = 0; j < walk.cols; ++j) {
    const char* c0 = walk.base + static_cast<std::size_t>(j) * walk.col_stride;
    if (range_hits_rect(c0, c0 + walk.row_bytes, other)) return true;
  }
  return false;
}

/// Allocation containing [p, p+1), if any. Caller holds st().m.
const std::pair<const void* const, AllocRec>* find_alloc(const void* p) noexcept {
  auto& s = st();
  auto it = s.allocs.upper_bound(p);
  if (it == s.allocs.begin()) return nullptr;
  --it;
  const char* base = static_cast<const char*>(it->first);
  if (static_cast<const char*>(p) < base + it->second.bytes) return &*it;
  return nullptr;
}

/// Record a violation; caller holds st().m. Handles stderr, metrics,
/// flight dump, and the abort escalation.
void record_violation(Violation v) noexcept {
  auto& s = st();
  const bool expected = s.expect_depth.load(std::memory_order_relaxed) > 0;
  const bool first = s.seq == 0;
  const std::uint64_t my_seq = s.seq++;
  obs::counter_metric("check.violations").add();
  if (obs::journal_enabled())
    obs::journal_log(obs::JournalSeverity::Error, "check", to_string(v.kind), -1,
                     static_cast<double>(my_seq), -1, v.message);
  if (!expected) {
    std::fprintf(stderr, "[fth::check] %s: %s\n", to_string(v.kind),
                 v.message.c_str());
    if (first) obs::flight_dump("check_violation");
    if (s.abort_on_violation) {
      std::fflush(stderr);
      std::abort();
    }
  }
  if (s.stored.size() < kMaxStoredViolations)
    s.stored.emplace_back(my_seq, std::move(v));
}

}  // namespace

namespace {

/// Transfer happens-before test for a host-range touch; caller holds st().m
/// (both public entry points funnel here so neither ever re-locks the
/// non-recursive mutex — host_view_slow → host_touch_slow used to, and
/// self-deadlocked on the first host view built while device memory existed).
void host_touch_locked(const Rect& touch, const void* p, bool write) noexcept {
  auto& s = st();
  for (const auto& t : s.transfers) {
    // h2d only *reads* the host range: concurrent host reads are fine.
    if (!t.host_is_dst && !write) continue;
    if (!rects_overlap(touch, t.host)) continue;
    Violation v;
    v.kind = ViolationKind::TransferRace;
    v.alloc_site = t.dev_site;
    v.task_label = t.label;
    v.ticket = t.ticket;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "wait on an Event recorded at/after ticket %" PRIu64
                  " of stream %p (or synchronize()) before this access",
                  t.ticket, t.stream);
    v.missing_edge = buf;
    char mbuf[320];
    std::snprintf(mbuf, sizeof mbuf,
                  "host %s at %p races in-flight %s '%s' (ticket %" PRIu64
                  ", device alloc '%s'): no happens-before edge orders the "
                  "transfer first; %s",
                  write ? "write" : "read", p, t.host_is_dst ? "d2h" : "h2d",
                  t.label, t.ticket, t.dev_site, buf);
    v.message = mbuf;
    record_violation(std::move(v));
    return;  // one report per access is enough
  }
}

}  // namespace

namespace detail {

void host_view_slow(const void* p, std::size_t elem, index_t rows, index_t cols,
                    index_t ld, bool write) noexcept {
  if (in_task_context()) return;  // worker code owns device memory for the task
  auto& s = st();
  std::lock_guard lock(s.m);
  if (const auto* a = find_alloc(p)) {
    Violation v;
    v.kind = ViolationKind::HostViewOverDevice;
    v.alloc_site = a->second.site;
    v.task_label = "host";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "host-space access to device allocation '%s' (epoch %" PRIu64
                  ", %zu bytes) at %p from host context — device views must be "
                  "unwrapped inside a stream task or via hybrid::host_view",
                  a->second.site, a->second.epoch, a->second.bytes, p);
    v.message = buf;
    record_violation(std::move(v));
    return;
  }
  const Rect touch = make_rect(p, elem, rows, cols, ld);
  if (touch.base != nullptr) host_touch_locked(touch, p, write);
}

void host_touch_slow(const void* p, std::size_t elem, index_t rows, index_t cols,
                     index_t ld, bool write) noexcept {
  if (in_task_context()) return;
  const Rect touch = make_rect(p, elem, rows, cols, ld);
  if (touch.base == nullptr) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  host_touch_locked(touch, p, write);
}

}  // namespace detail

void require_task_context(const void* p, std::size_t bytes, const char* what) noexcept {
  if (p == nullptr || !active()) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  const auto* a = find_alloc(p);
  if (in_task_context() && a != nullptr) {
    // Cross-device isolation: each pool member is its own memory space, so
    // a task running on device X must not unwrap device Y's allocation —
    // transfers between spaces have to go through the host. Only enforced
    // when both sides carry an ordinal (untagged = legacy single-device).
    const int tdev = detail::t_ctx.device;
    if (tdev >= 0 && a->second.device >= 0 && tdev != a->second.device) {
      Violation v;
      v.kind = ViolationKind::CrossDeviceAccess;
      v.alloc_site = a->second.site;
      v.task_label = detail::t_ctx.task_label;
      v.ticket = detail::t_ctx.ticket;
      char buf[320];
      std::snprintf(buf, sizeof buf,
                    "%s on device-%d allocation '%s' (epoch %" PRIu64
                    ") from a task on device %d ('%s', ticket %" PRIu64
                    ") — pool members are separate memory spaces; route the "
                    "data through the host",
                    what, a->second.device, a->second.site, a->second.epoch,
                    tdev, v.task_label, v.ticket);
      v.message = buf;
      record_violation(std::move(v));
      return;
    }
    // Effect conformance (FTH_CHECK_EFFECTS=1): a task that declared
    // FTH_TASK_EFFECTS must unwrap only ranges inside its declared set.
    // Unwraps don't carry read/write intent, so containment is tested
    // against the union of declared reads and writes.
    const TaskEffects* eff = detail::t_ctx.effects;
    if (eff != nullptr && g_effects_active.load(std::memory_order_relaxed) &&
        !eff->covers(p, bytes, /*write=*/false)) {
      Violation v;
      v.kind = ViolationKind::EffectMismatch;
      v.alloc_site = a->second.site;
      v.task_label = detail::t_ctx.task_label;
      v.ticket = detail::t_ctx.ticket;
      char buf[320];
      std::snprintf(buf, sizeof buf,
                    "%s on device allocation '%s' (%zu bytes at %p) inside task "
                    "'%s' (ticket %" PRIu64
                    ") lies outside the task's declared FTH_READS/FTH_WRITES set "
                    "(%d range(s) declared)",
                    what, a->second.site, bytes, p, v.task_label, v.ticket,
                    eff->size());
      v.message = buf;
      record_violation(std::move(v));
    }
    return;
  }
  Violation v;
  v.kind = ViolationKind::HostDerefDevice;
  v.alloc_site = a != nullptr ? a->second.site : "<unregistered>";
  v.task_label = in_task_context() ? detail::t_ctx.task_label : "host";
  char buf[320];
  if (a == nullptr) {
    std::snprintf(buf, sizeof buf,
                  "%s on a stale/unregistered device range at %p (%zu bytes) — "
                  "the backing DeviceMatrix is gone",
                  what, p, bytes);
  } else {
    std::snprintf(buf, sizeof buf,
                  "%s on device allocation '%s' (epoch %" PRIu64
                  ") from host context — only stream tasks and transfer "
                  "routines may dereference device views",
                  what, a->second.site, a->second.epoch);
  }
  v.message = buf;
  record_violation(std::move(v));
}

void on_device_alloc(const void* p, std::size_t bytes, const char* site,
                     int device) noexcept {
  if (!active() || p == nullptr) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  s.allocs[p] = AllocRec{bytes, site != nullptr ? site : "", s.next_epoch++, device};
  detail::g_device_allocs.store(static_cast<std::uint32_t>(s.allocs.size()),
                                std::memory_order_relaxed);
}

void on_device_free(const void* p) noexcept {
  if (p == nullptr) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  s.allocs.erase(p);
  detail::g_device_allocs.store(static_cast<std::uint32_t>(s.allocs.size()),
                                std::memory_order_relaxed);
}

void on_transfer_enqueued(const void* stream, std::uint64_t ticket, bool host_is_dst,
                          const char* label, const void* p, std::size_t elem,
                          index_t rows, index_t cols, index_t ld,
                          const void* dev_base) noexcept {
  if (!active()) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  TransferRec t;
  t.stream = stream;
  t.ticket = ticket;
  t.host_is_dst = host_is_dst;
  t.label = label != nullptr ? label : "";
  t.host = make_rect(p, elem, rows, cols, ld);
  if (const auto* a = find_alloc(dev_base)) t.dev_site = a->second.site;
  s.transfers.push_back(t);
  detail::g_live_transfers.store(static_cast<std::uint32_t>(s.transfers.size()),
                                 std::memory_order_relaxed);
}

namespace {

/// Caller holds st().m: raise hb[stream], chase cross-stream edges to a
/// fixpoint, retire every transfer the host has now ordered.
void order_locked(const void* stream, std::uint64_t ticket) noexcept {
  auto& s = st();
  auto& h = s.hb[stream];
  if (ticket > h) h = ticket;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = s.edges.begin(); it != s.edges.end();) {
      auto w = s.hb.find(it->waiter);
      if (w != s.hb.end() && w->second >= it->wait_ticket) {
        auto& src = s.hb[it->src];
        if (it->src_ticket > src) {
          src = it->src_ticket;
          changed = true;
        }
        it = s.edges.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto it = s.transfers.begin(); it != s.transfers.end();) {
    auto h2 = s.hb.find(it->stream);
    if (h2 != s.hb.end() && h2->second >= it->ticket)
      it = s.transfers.erase(it);
    else
      ++it;
  }
  detail::g_live_transfers.store(static_cast<std::uint32_t>(s.transfers.size()),
                                 std::memory_order_relaxed);
}

}  // namespace

void on_host_ordered(const void* stream, std::uint64_t ticket) noexcept {
  if (!active()) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  order_locked(stream, ticket);
}

void on_cross_stream_wait(const void* waiter, std::uint64_t wait_ticket,
                          const void* src, std::uint64_t src_ticket) noexcept {
  if (!active()) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  s.edges.push_back(CrossEdge{waiter, wait_ticket, src, src_ticket});
  // The edge may already be satisfied (host ordered the waiter earlier).
  order_locked(waiter, s.hb.count(waiter) != 0 ? s.hb[waiter] : 0);
}

void on_stream_destroyed(const void* stream, std::uint64_t tail_ticket) noexcept {
  auto& s = st();
  std::lock_guard lock(s.m);
  order_locked(stream, tail_ticket);
  s.hb.erase(stream);
}

void require_stream_idle(bool idle, const void* p, const char* what,
                         int device) noexcept {
  if (!active()) return;
  auto& s = st();
  std::lock_guard lock(s.m);
  const auto* a = find_alloc(p);
  // An idle stream only grants a host-exclusive window over its own
  // device's memory: gating device-1 data on device-0's stream is a
  // cross-device confusion even when that stream is idle.
  if (device >= 0 && a != nullptr && a->second.device >= 0 &&
      a->second.device != device) {
    Violation v;
    v.kind = ViolationKind::CrossDeviceAccess;
    v.alloc_site = a->second.site;
    v.task_label = "host";
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "%s gated on a device-%d stream, but the allocation '%s' "
                  "belongs to device %d — pass the owning device's stream",
                  what, device, a->second.site, a->second.device);
    v.message = buf;
    record_violation(std::move(v));
    return;
  }
  if (idle) return;
  Violation v;
  v.kind = ViolationKind::StreamNotIdle;
  v.alloc_site = a != nullptr ? a->second.site : "";
  v.task_label = "host";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s taken on device allocation '%s' while the stream still has "
                "queued work — synchronize() first (the host-exclusive window "
                "requires an idle stream)",
                what, v.alloc_site);
  v.message = buf;
  record_violation(std::move(v));
}

void set_active(bool on) noexcept {
  detail::g_active.store(on, std::memory_order_relaxed);
}

void set_effects_active(bool on) noexcept {
  g_effects_active.store(on, std::memory_order_relaxed);
}

bool effects_active() noexcept {
  return g_effects_active.load(std::memory_order_relaxed);
}

std::uint64_t violation_count() noexcept {
  auto& s = st();
  std::lock_guard lock(s.m);
  return s.seq;
}

std::vector<Violation> take_violations() {
  auto& s = st();
  std::lock_guard lock(s.m);
  std::vector<Violation> out;
  out.reserve(s.stored.size());
  for (auto& [seq, v] : s.stored) out.push_back(std::move(v));
  s.stored.clear();
  return out;
}

ExpectViolations::ExpectViolations() {
  auto& s = st();
  std::lock_guard lock(s.m);
  start_count_ = s.seq;
  s.expect_depth.fetch_add(1, std::memory_order_relaxed);
}

ExpectViolations::~ExpectViolations() {
  st().expect_depth.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<Violation> ExpectViolations::taken() {
  auto& s = st();
  std::lock_guard lock(s.m);
  // Entries carry their recording sequence number, so draining "everything
  // since this scope opened" is exact even after earlier scopes drained
  // their own tails (erasing by index here used to go stale the moment a
  // second scope ran in the same process).
  auto first = s.stored.begin();
  while (first != s.stored.end() && first->first < start_count_) ++first;
  std::vector<Violation> out;
  for (auto it = first; it != s.stored.end(); ++it)
    out.push_back(std::move(it->second));
  s.stored.erase(first, s.stored.end());
  return out;
}

#else  // !FTH_CHECK_ENABLED — minimal stubs so callers link in any build.

void set_active(bool) noexcept {}
void set_effects_active(bool) noexcept {}
bool effects_active() noexcept { return false; }
std::uint64_t violation_count() noexcept { return 0; }
std::vector<Violation> take_violations() { return {}; }
ExpectViolations::ExpectViolations() = default;
ExpectViolations::~ExpectViolations() = default;
std::vector<Violation> ExpectViolations::taken() { return {}; }

#endif  // FTH_CHECK_ENABLED

}  // namespace fth::check

#pragma once
// Tokenizer for the fth::analyze static dataflow pass (DESIGN.md §11).
//
// A deliberately small C++-subset lexer: identifiers, numbers,
// string/char literals (including raw strings and encoding prefixes),
// and punctuation with the multi-character operators the analyzer must
// tell apart (`=` vs `==`, `.` vs `...`). Comments and preprocessor
// lines are dropped entirely; every token carries the 1-based source
// line it started on so findings point at real locations.
//
// This is not a conforming C++ lexer — it only has to be faithful on
// the repo's own sources, which the analyze.repo ctest gate keeps
// honest.

#include <string>
#include <vector>

namespace fth::check::analyze {

enum class Tok {
  Ident,   ///< identifier or keyword
  Number,  ///< numeric literal (pp-number, loosely)
  String,  ///< string literal; text = contents without quotes/delimiters
  Char,    ///< character literal; text = contents
  Punct,   ///< operator / punctuator, longest-match
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  ///< 1-based line the token starts on
};

/// Lex `content` into tokens. Never fails: unrecognized bytes become
/// single-character Punct tokens.
std::vector<Token> lex(const std::string& content);

/// True for the keywords that open an iteration statement (`for`,
/// `while`, `do`). The loop-carried happens-before pass (DESIGN.md
/// §11.3) walks the bodies of these twice; everything else — including
/// `if`/`else`/`switch` — is walked as straight-line code (may-union).
bool is_loop_keyword(const std::string& ident);

}  // namespace fth::check::analyze

// fth::check declared-effect layer (DESIGN.md §11).
//
// A TaskEffects value is a bounded list of memory rectangles a stream task
// promises to touch, split into reads and writes. It serves two consumers:
//
//  * tools/fth_analyze (src/check/analyze.cpp) reads the declarations
//    *statically*: every Stream::enqueue in src/hybrid/ and src/ft/ must
//    carry one (rule `undeclared-task`), which is what lets the dataflow
//    engine reason about what each enqueued lambda may access without
//    seeing through std::function.
//  * The runtime checker validates the declarations *dynamically* when
//    FTH_CHECK_EFFECTS=1 (Debug builds): every device-view unwrap via
//    .in_task() inside a task that declared effects must land inside a
//    declared range, otherwise ViolationKind::EffectMismatch is reported.
//    That closes the loop — the annotations the static pass trusts are
//    themselves checked against what the task really does.
//
// Spelling (the analyzer parses exactly this shape):
//
//   s.enqueue("dev.gemm",
//             FTH_TASK_EFFECTS(FTH_READS(a, b) FTH_WRITES(c)),
//             [=] { ... });
//
// FTH_READS/FTH_WRITES accept any mix of host/device Matrix/Vector views;
// note the juxtaposition (no comma) between the two groups — they chain
// builder calls on one TaskEffects temporary. A task that touches nothing
// (pure marker) declares FTH_TASK_EFFECTS() — an empty set is a declaration
// too, and any unwrap under it is a violation.
//
// Everything here compiles to an empty struct when FTH_CHECK_ENABLED is 0,
// so Release builds carry no per-task storage and no code (asserted by
// tools/fth_checkinfo --expect-off).
#pragma once

#include <cstddef>

#include "check/hooks.hpp"
#include "la/matrix.hpp"

namespace fth::check {

/// True when TaskEffects actually stores ranges in this build (mirrors
/// compiled_in(); separate name so fth_checkinfo can report both).
constexpr bool effects_compiled_in() noexcept { return FTH_CHECK_ENABLED != 0; }

#if FTH_CHECK_ENABLED

/// Hook-free view introspection for effect declaration. Reading a view's
/// base pointer to *declare* it must not itself count as a host access
/// (note_host_view would misreport a declared-upon in-flight rectangle as
/// a race), hence this friend backdoor instead of .data()/.raw_data().
struct EffectAccess {
  template <class T, MemSpace S>
  static const void* base(const MatrixView<T, S>& v) noexcept {
    return v.data_;
  }
  template <class T, MemSpace S>
  static std::size_t bytes(const MatrixView<T, S>& v) noexcept {
    return v.extent_bytes();
  }
  template <class T, MemSpace S>
  static const void* base(const VectorView<T, S>& v) noexcept {
    return v.data_;
  }
  template <class T, MemSpace S>
  static std::size_t bytes(const VectorView<T, S>& v) noexcept {
    return v.extent_bytes();
  }
};

/// One declared rectangle, flattened to its byte extent. Strided views are
/// over-approximated by [base, base + extent) — containment checks stay
/// conservative in the accepting direction only for ranges the task really
/// declared, so a false "covered" requires overlapping declarations.
struct EffectRange {
  const void* base = nullptr;
  std::size_t bytes = 0;
  bool write = false;
};

/// Bounded builder of declared ranges. Copied by value into the stream's
/// Task; kMax covers the widest annotated task in the tree (larfb: 4).
class TaskEffects {
 public:
  static constexpr int kMax = 12;

  template <class... Vs>
  TaskEffects& r(const Vs&... vs) noexcept {
    (add(vs, /*write=*/false), ...);
    return *this;
  }
  template <class... Vs>
  TaskEffects& w(const Vs&... vs) noexcept {
    (add(vs, /*write=*/true), ...);
    return *this;
  }

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }
  [[nodiscard]] const EffectRange* begin() const noexcept { return ranges_; }
  [[nodiscard]] const EffectRange* end() const noexcept { return ranges_ + n_; }

  /// True when [p, p+bytes) lies inside a declared range. Write accesses
  /// require a declared write range; reads are satisfied by either kind.
  /// An overflowed declaration accepts everything (never a false report).
  [[nodiscard]] bool covers(const void* p, std::size_t bytes, bool write) const noexcept {
    if (overflow_) return true;
    const char* const a = static_cast<const char*>(p);
    for (int i = 0; i < n_; ++i) {
      const EffectRange& e = ranges_[i];
      if (write && !e.write) continue;
      const char* const b = static_cast<const char*>(e.base);
      if (a >= b && a + bytes <= b + e.bytes) return true;
    }
    return false;
  }

 private:
  template <class V>
  void add(const V& v, bool write) noexcept {
    const void* base = EffectAccess::base(v);
    const std::size_t bytes = EffectAccess::bytes(v);
    if (base == nullptr || bytes == 0) return;
    if (n_ == kMax) {
      overflow_ = true;
      return;
    }
    ranges_[n_] = EffectRange{base, bytes, write};
    ++n_;
  }

  EffectRange ranges_[kMax] = {};
  int n_ = 0;
  bool overflow_ = false;
};

#else  // !FTH_CHECK_ENABLED — declarations evaporate.

class TaskEffects {
 public:
  template <class... Vs>
  TaskEffects& r(const Vs&...) noexcept {
    return *this;
  }
  template <class... Vs>
  TaskEffects& w(const Vs&...) noexcept {
    return *this;
  }
};

#endif  // FTH_CHECK_ENABLED

}  // namespace fth::check

// The annotation spelling. FTH_TASK_EFFECTS juxtaposes its groups instead
// of comma-separating them so the whole declaration is one expression:
//   FTH_TASK_EFFECTS(FTH_READS(a, b) FTH_WRITES(c))
#define FTH_READS(...) .r(__VA_ARGS__)
#define FTH_WRITES(...) .w(__VA_ARGS__)
#define FTH_TASK_EFFECTS(...) (::fth::check::TaskEffects{} __VA_ARGS__)

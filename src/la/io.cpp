#include "la/io.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "la/norms.hpp"

namespace fth {

void print_matrix(std::ostream& os, MatrixView<const double> a, const std::string& name,
                  index_t max_dim) {
  const index_t m = std::min(a.rows(), max_dim);
  const index_t n = std::min(a.cols(), max_dim);
  os << name << " (" << a.rows() << "x" << a.cols();
  if (m < a.rows() || n < a.cols()) os << ", showing " << m << "x" << n;
  os << "):\n";
  const auto old_flags = os.flags();
  const auto old_prec = os.precision();
  os << std::scientific << std::setprecision(3);
  for (index_t i = 0; i < m; ++i) {
    os << "  ";
    for (index_t j = 0; j < n; ++j) os << std::setw(11) << a(i, j) << ' ';
    if (n < a.cols()) os << "...";
    os << '\n';
  }
  if (m < a.rows()) os << "  ...\n";
  os.flags(old_flags);
  os.precision(old_prec);
}

namespace {

/// Map |v| to a ramp character given the reference scale.
char ramp_char(double v, double scale) {
  if (v <= 0.0 || scale <= 0.0) return '.';
  // Bin by decade below the scale: scale*10^0 -> '9', scale*1e-9 -> '1'.
  const double rel = v / scale;
  if (rel < 1e-9) return '.';
  const int decade = static_cast<int>(std::floor(std::log10(rel)));  // in [-9, 0]
  const int level = std::clamp(10 + decade, 1, 9);
  return static_cast<char>('0' + level);
}

}  // namespace

std::string ascii_heatmap(MatrixView<const double> a, index_t max_cells, double scale) {
  if (a.empty()) return "(empty)\n";
  if (scale <= 0.0) scale = norm_max(a);
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t cm = std::min(m, max_cells);
  const index_t cn = std::min(n, max_cells);

  std::ostringstream os;
  for (index_t ci = 0; ci < cm; ++ci) {
    const index_t i0 = ci * m / cm;
    const index_t i1 = std::max(i0 + 1, (ci + 1) * m / cm);
    for (index_t cj = 0; cj < cn; ++cj) {
      const index_t j0 = cj * n / cn;
      const index_t j1 = std::max(j0 + 1, (cj + 1) * n / cn);
      // A cell shows the max magnitude inside its bucket so single polluted
      // elements remain visible after down-sampling.
      double v = 0.0;
      for (index_t i = i0; i < i1; ++i)
        for (index_t j = j0; j < j1; ++j) v = std::max(v, std::abs(a(i, j)));
      os << ramp_char(v, scale);
    }
    os << '\n';
  }
  return os.str();
}

std::string magnitude_histogram(MatrixView<const double> a, double scale) {
  if (scale <= 0.0) scale = norm_max(a);
  constexpr int kBins = 12;  // decades below scale, plus an exact-zero bin
  long long bins[kBins + 1] = {};
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = std::abs(a(i, j));
      if (v == 0.0 || scale == 0.0) {
        ++bins[kBins];
        continue;
      }
      const double rel = v / scale;
      int d = rel <= 0.0 ? kBins - 1
                         : static_cast<int>(std::floor(-std::log10(std::max(rel, 1e-300))));
      d = std::clamp(d, 0, kBins - 1);
      ++bins[d];
    }
  }
  std::ostringstream os;
  os << "magnitude histogram (scale=" << std::scientific << std::setprecision(3) << scale
     << "):\n";
  for (int d = 0; d < kBins; ++d) {
    if (bins[d] == 0) continue;
    os << "  [1e-" << std::setw(2) << d + 1 << ", 1e-" << std::setw(2) << d << ") x scale : "
       << bins[d] << '\n';
  }
  os << "  zero                      : " << bins[kBins] << '\n';
  return os.str();
}

}  // namespace fth

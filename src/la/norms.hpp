// Matrix norms and element-wise comparison helpers.
#pragma once

#include <algorithm>
#include <cmath>

#include "la/matrix.hpp"

namespace fth {

/// 1-norm: max column absolute sum.
template <class T>
T norm_one(MatrixView<const T> a) {
  T best{};
  for (index_t j = 0; j < a.cols(); ++j) {
    T s{};
    for (index_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

/// Infinity norm: max row absolute sum.
template <class T>
T norm_inf(MatrixView<const T> a) {
  T best{};
  for (index_t i = 0; i < a.rows(); ++i) {
    T s{};
    for (index_t j = 0; j < a.cols(); ++j) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

/// Frobenius norm with overflow-safe scaling.
template <class T>
T norm_fro(MatrixView<const T> a) {
  T scale{0};
  T ssq{1};
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const T x = a(i, j);
      if (x == T{0}) continue;
      const T ax = std::abs(x);
      if (scale < ax) {
        const T r = scale / ax;
        ssq = T{1} + ssq * r * r;
        scale = ax;
      } else {
        const T r = ax / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

/// Max-abs norm: max |a_ij|.
template <class T>
T norm_max(MatrixView<const T> a) {
  T best{};
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) best = std::max(best, std::abs(a(i, j)));
  return best;
}

/// Max-abs of the element-wise difference A − B.
template <class T>
T max_abs_diff(MatrixView<const T> a, MatrixView<const T> b) {
  FTH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "diff dimension mismatch");
  T best{};
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) best = std::max(best, std::abs(a(i, j) - b(i, j)));
  return best;
}

/// Count of elements where |A − B| exceeds `tol`.
template <class T>
index_t count_diff(MatrixView<const T> a, MatrixView<const T> b, T tol) {
  FTH_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "diff dimension mismatch");
  index_t n = 0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      if (std::abs(a(i, j) - b(i, j)) > tol) ++n;
  return n;
}

}  // namespace fth

// Textual matrix output: pretty printing and ASCII heat maps.
//
// The Fig. 2 reproduction renders |FT result − fault-free result| as a heat
// map; on a terminal we bin magnitudes into a character ramp the same way
// the paper bins them into colours.
#pragma once

#include <iosfwd>
#include <string>

#include "la/matrix.hpp"

namespace fth {

/// Print a matrix (or the top-left `max_dim` square of a large one).
void print_matrix(std::ostream& os, MatrixView<const double> a, const std::string& name,
                  index_t max_dim = 12);

/// Render |a_ij| as an ASCII heat map, down-sampling to at most
/// `max_cells` rows/columns. The character ramp encodes log10 magnitude
/// relative to `scale` (defaults to the matrix max-abs):
///   '.' zero/negligible, then '1'..'9' for increasing magnitude decades.
std::string ascii_heatmap(MatrixView<const double> a, index_t max_cells = 64,
                          double scale = 0.0);

/// Per-decade histogram of |a_ij| magnitudes (count of elements whose
/// magnitude falls in each power-of-ten bin relative to `scale`).
std::string magnitude_histogram(MatrixView<const double> a, double scale = 0.0);

}  // namespace fth

// Column-major (LAPACK-layout) dense matrix container and non-owning views.
//
// All higher layers (BLAS kernels, LAPACK subset, the hybrid runtime, and
// the fault-tolerant core) traffic exclusively in MatrixView/VectorView, so
// sub-matrix operations never copy. Matrix owns storage; views borrow it.
//
// Views carry a compile-time MemSpace tag (DESIGN.md §10). Host-tagged
// views (the default — every pre-existing spelling like MatrixView<double>
// is a host view) behave exactly as before. Device-tagged views
// (DMatrixView/DVectorView, produced by hybrid::DeviceMatrix) expose only
// geometry: they have no data()/operator(), so host code cannot dereference
// device memory by accident. The only ways through are
//   .in_task()            — runtime-checked: caller must be a stream worker
//                           inside a task (or transfer routine),
//   hybrid::host_view()   — runtime-checked: the stream must be idle,
//   .unchecked_host_view()— no check; restricted by tools/fth_lint to the
//                           src/hybrid/ + src/fault/ allowlist.
// In checked builds (see check/hooks.hpp) host-view construction and every
// element access additionally validate against the device-allocation
// registry and the in-flight-transfer happens-before window.
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

#include "check/hooks.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace fth {

namespace check {
struct EffectAccess;  // hook-free view introspection (check/effects.hpp)
}  // namespace check

namespace detail {
/// Tag selecting the hook-free view constructor. Only the sanctioned
/// unwrap gates spell this; tools/fth_lint flags any other use.
struct unchecked_view_t {
  explicit unchecked_view_t() = default;
};
inline constexpr unchecked_view_t unchecked_view{};
}  // namespace detail

template <class T, MemSpace S = MemSpace::Host>
class VectorView;
template <class T, MemSpace S = MemSpace::Host>
class MatrixView;

/// Device-space view aliases: geometry-only handles to stream-owned memory.
template <class T>
using DVectorView = VectorView<T, MemSpace::Device>;
template <class T>
using DMatrixView = MatrixView<T, MemSpace::Device>;

/// Non-owning strided vector view. `T` may be const-qualified.
template <class T, MemSpace S>
class VectorView {
 public:
  using value_type = std::remove_const_t<T>;
  static constexpr MemSpace space = S;

  VectorView() = default;
  VectorView(T* data, index_t n, index_t inc = 1) : data_(data), n_(n), inc_(inc) {
    FTH_CHECK(n >= 0, "vector length must be non-negative");
    FTH_CHECK(inc != 0, "vector stride must be non-zero");
    if constexpr (S == MemSpace::Host)
      check::note_host_view(data_, sizeof(value_type), 1, n_, inc_,
                            !std::is_const_v<T>);
  }

  /// Hook-free constructor for the checked unwrap gates (see file header).
  VectorView(detail::unchecked_view_t, T* data, index_t n, index_t inc) noexcept
      : data_(data), n_(n), inc_(inc) {}

  /// Implicit widening from mutable to const view (same space).
  template <class U = T>
    requires std::is_const_v<U>
  VectorView(const VectorView<value_type, S>& other) noexcept  // NOLINT(google-explicit-constructor)
      : data_(other.data_), n_(other.n_), inc_(other.inc_) {}

  [[nodiscard]] index_t size() const noexcept { return n_; }
  [[nodiscard]] index_t inc() const noexcept { return inc_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] T* data() const noexcept
    requires(S == MemSpace::Host)
  {
    check::note_host_view(data_, sizeof(value_type), 1, n_, inc_,
                          !std::is_const_v<T>);
    return data_;
  }

  T& operator[](index_t i) const
    requires(S == MemSpace::Host)
  {
    FTH_ASSERT(i >= 0 && i < n_, "vector index out of range");
    T& e = data_[i * inc_];
    check::note_host_touch(&e, sizeof(value_type), 1, 1, 1, !std::is_const_v<T>);
    return e;
  }

  /// Sub-vector [first, first+len) (space-preserving).
  [[nodiscard]] VectorView sub(index_t first, index_t len) const {
    FTH_CHECK(first >= 0 && len >= 0 && first + len <= n_, "sub-vector out of range");
    return VectorView(detail::unchecked_view, data_ + first * inc_, len, inc_);
  }

  /// Unwrap a device view for the calling stream-worker task. Checked:
  /// reports a violation when called outside a task context or on a range
  /// whose backing device allocation is gone.
  [[nodiscard]] VectorView<T, MemSpace::Host> in_task() const
    requires(S == MemSpace::Device)
  {
    check::require_task_context(data_, extent_bytes(), "VectorView::in_task()");
    return VectorView<T, MemSpace::Host>(detail::unchecked_view, data_, n_, inc_);
  }

  /// Unchecked escape hatch (lint-restricted; see file header).
  [[nodiscard]] VectorView<T, MemSpace::Host> unchecked_host_view() const noexcept
    requires(S == MemSpace::Device)
  {
    return VectorView<T, MemSpace::Host>(detail::unchecked_view, data_, n_, inc_);
  }

  /// Device base address as an opaque pointer: identity / checker
  /// registration only, never dereferenced on the host (lint-restricted).
  [[nodiscard]] T* raw_data() const noexcept
    requires(S == MemSpace::Device)
  {
    return data_;
  }

 private:
  template <class, MemSpace>
  friend class VectorView;
  friend struct check::EffectAccess;

  [[nodiscard]] std::size_t extent_bytes() const noexcept {
    if (n_ == 0) return 0;
    const index_t span = (n_ - 1) * (inc_ < 0 ? -inc_ : inc_) + 1;
    return static_cast<std::size_t>(span) * sizeof(value_type);
  }

  T* data_ = nullptr;
  index_t n_ = 0;
  index_t inc_ = 1;
};

/// Non-owning view of a column-major matrix block. `T` may be const.
template <class T, MemSpace S>
class MatrixView {
 public:
  using value_type = std::remove_const_t<T>;
  static constexpr MemSpace space = S;

  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FTH_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    FTH_CHECK(ld >= std::max<index_t>(1, rows), "leading dimension too small");
    if constexpr (S == MemSpace::Host)
      check::note_host_view(data_, sizeof(value_type), rows_, cols_, ld_,
                            !std::is_const_v<T>);
  }

  /// Hook-free constructor for the checked unwrap gates (see file header).
  MatrixView(detail::unchecked_view_t, T* data, index_t rows, index_t cols,
             index_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  /// Implicit widening from mutable to const view (same space).
  template <class U = T>
    requires std::is_const_v<U>
  MatrixView(const MatrixView<value_type, S>& other) noexcept  // NOLINT(google-explicit-constructor)
      : data_(other.data_), rows_(other.rows_), cols_(other.cols_), ld_(other.ld_) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] T* data() const noexcept
    requires(S == MemSpace::Host)
  {
    check::note_host_view(data_, sizeof(value_type), rows_, cols_, ld_,
                          !std::is_const_v<T>);
    return data_;
  }

  T& operator()(index_t i, index_t j) const
    requires(S == MemSpace::Host)
  {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    T& e = data_[i + j * ld_];
    check::note_host_touch(&e, sizeof(value_type), 1, 1, 1, !std::is_const_v<T>);
    return e;
  }

  /// m×n sub-block with top-left corner (i, j) (space-preserving).
  [[nodiscard]] MatrixView block(index_t i, index_t j, index_t m, index_t n) const {
    FTH_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0, "block corner/extent must be non-negative");
    FTH_CHECK(i + m <= rows_ && j + n <= cols_, "block exceeds matrix bounds");
    return MatrixView(detail::unchecked_view, data_ + i + j * ld_, m, n, ld_);
  }

  /// Column j as a unit-stride vector (space-preserving).
  [[nodiscard]] VectorView<T, S> col(index_t j) const {
    FTH_CHECK(j >= 0 && j < cols_, "column index out of range");
    return VectorView<T, S>(detail::unchecked_view, data_ + j * ld_, rows_, 1);
  }

  /// Row i as a stride-ld vector (space-preserving).
  [[nodiscard]] VectorView<T, S> row(index_t i) const {
    FTH_CHECK(i >= 0 && i < rows_, "row index out of range");
    return VectorView<T, S>(detail::unchecked_view, data_ + i, cols_, ld_);
  }

  /// The main diagonal as a stride-(ld+1) vector (space-preserving).
  [[nodiscard]] VectorView<T, S> diag() const {
    const index_t n = std::min(rows_, cols_);
    return VectorView<T, S>(detail::unchecked_view, data_, n, ld_ + 1);
  }

  /// Unwrap a device view for the calling stream-worker task. Checked:
  /// reports a violation when called outside a task context or on a range
  /// whose backing device allocation is gone.
  [[nodiscard]] MatrixView<T, MemSpace::Host> in_task() const
    requires(S == MemSpace::Device)
  {
    check::require_task_context(data_, extent_bytes(), "MatrixView::in_task()");
    return MatrixView<T, MemSpace::Host>(detail::unchecked_view, data_, rows_, cols_, ld_);
  }

  /// Unchecked escape hatch (lint-restricted; see file header).
  [[nodiscard]] MatrixView<T, MemSpace::Host> unchecked_host_view() const noexcept
    requires(S == MemSpace::Device)
  {
    return MatrixView<T, MemSpace::Host>(detail::unchecked_view, data_, rows_, cols_, ld_);
  }

  /// Device base address as an opaque pointer: identity / checker
  /// registration only, never dereferenced on the host (lint-restricted).
  [[nodiscard]] T* raw_data() const noexcept
    requires(S == MemSpace::Device)
  {
    return data_;
  }

 private:
  template <class, MemSpace>
  friend class MatrixView;
  friend struct check::EffectAccess;

  [[nodiscard]] std::size_t extent_bytes() const noexcept {
    if (rows_ == 0 || cols_ == 0) return 0;
    return static_cast<std::size_t>((cols_ - 1) * ld_ + rows_) * sizeof(value_type);
  }

  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

/// Owning column-major dense matrix (always host memory).
template <class T>
class Matrix {
  static_assert(!std::is_const_v<T>, "Matrix owns storage and must be mutable");

 public:
  using value_type = T;

  Matrix() = default;

  /// rows×cols matrix, zero-initialized.
  Matrix(index_t rows, index_t cols) : rows_(rows), cols_(cols), ld_(std::max<index_t>(1, rows)) {
    FTH_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    storage_.assign(static_cast<std::size_t>(ld_) * static_cast<std::size_t>(cols_), T{});
  }

  /// Deep copy of an arbitrary view (compacts the leading dimension).
  explicit Matrix(MatrixView<const T> src) : Matrix(src.rows(), src.cols()) {
    assign(src);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] T* data() noexcept {
    check::note_host_touch(storage_.data(), sizeof(T), rows_, cols_, ld_, true);
    return storage_.data();
  }
  [[nodiscard]] const T* data() const noexcept {
    check::note_host_touch(storage_.data(), sizeof(T), rows_, cols_, ld_, false);
    return storage_.data();
  }

  T& operator()(index_t i, index_t j) {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    T& e = storage_[static_cast<std::size_t>(i + j * ld_)];
    check::note_host_touch(&e, sizeof(T), 1, 1, 1, true);
    return e;
  }
  const T& operator()(index_t i, index_t j) const {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    const T& e = storage_[static_cast<std::size_t>(i + j * ld_)];
    check::note_host_touch(&e, sizeof(T), 1, 1, 1, false);
    return e;
  }

  /// Whole-matrix mutable view.
  [[nodiscard]] MatrixView<T> view() noexcept {
    return MatrixView<T>(detail::unchecked_view, storage_.data(), rows_, cols_, ld_);
  }
  /// Whole-matrix const view.
  [[nodiscard]] MatrixView<const T> view() const noexcept {
    return MatrixView<const T>(detail::unchecked_view, storage_.data(), rows_, cols_, ld_);
  }
  [[nodiscard]] MatrixView<const T> cview() const noexcept { return view(); }

  /// Sub-block views (delegate to MatrixView::block).
  [[nodiscard]] MatrixView<T> block(index_t i, index_t j, index_t m, index_t n) {
    return view().block(i, j, m, n);
  }
  [[nodiscard]] MatrixView<const T> block(index_t i, index_t j, index_t m, index_t n) const {
    return view().block(i, j, m, n);
  }

  /// Copy the contents of `src` (must match dimensions) into this matrix.
  void assign(MatrixView<const T> src) {
    FTH_CHECK(src.rows() == rows_ && src.cols() == cols_, "assign dimension mismatch");
    for (index_t j = 0; j < cols_; ++j)
      std::copy_n(src.data() + j * src.ld(), rows_, storage_.data() + j * ld_);
  }

  /// Set every element to `value`.
  void fill(T value) {
    check::note_host_touch(storage_.data(), sizeof(T), rows_, cols_, ld_, true);
    std::fill(storage_.begin(), storage_.end(), value);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  std::vector<T> storage_;
};

/// Copy src into dst (dimensions must match; leading dimensions may differ).
template <class T>
void copy(MatrixView<const T> src, MatrixView<T> dst) {
  FTH_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(), "copy dimension mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.data() + j * src.ld(), src.rows(), dst.data() + j * dst.ld());
}

/// Set every element of a view to `value`.
template <class T>
void fill(MatrixView<T> a, std::remove_const_t<T> value) {
  for (index_t j = 0; j < a.cols(); ++j)
    std::fill_n(a.data() + j * a.ld(), a.rows(), value);
}

/// Set a view to the identity (ones on the diagonal, zeros elsewhere).
template <class T>
void set_identity(MatrixView<T> a) {
  fill(a, T{0});
  const index_t n = std::min(a.rows(), a.cols());
  for (index_t i = 0; i < n; ++i) a(i, i) = T{1};
}

}  // namespace fth

// Column-major (LAPACK-layout) dense matrix container and non-owning views.
//
// All higher layers (BLAS kernels, LAPACK subset, the hybrid runtime, and
// the fault-tolerant core) traffic exclusively in MatrixView/VectorView, so
// sub-matrix operations never copy. Matrix owns storage; views borrow it.
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fth {

/// Non-owning strided vector view. `T` may be const-qualified.
template <class T>
class VectorView {
 public:
  using value_type = std::remove_const_t<T>;

  VectorView() = default;
  VectorView(T* data, index_t n, index_t inc = 1) : data_(data), n_(n), inc_(inc) {
    FTH_CHECK(n >= 0, "vector length must be non-negative");
    FTH_CHECK(inc != 0, "vector stride must be non-zero");
  }

  /// Implicit widening from mutable to const view.
  template <class U = T, class = std::enable_if_t<std::is_const_v<U>>>
  VectorView(const VectorView<value_type>& other)  // NOLINT(google-explicit-constructor)
      : data_(other.data()), n_(other.size()), inc_(other.inc()) {}

  [[nodiscard]] index_t size() const noexcept { return n_; }
  [[nodiscard]] index_t inc() const noexcept { return inc_; }
  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  T& operator[](index_t i) const {
    FTH_ASSERT(i >= 0 && i < n_, "vector index out of range");
    return data_[i * inc_];
  }

  /// Sub-vector [first, first+len).
  [[nodiscard]] VectorView sub(index_t first, index_t len) const {
    FTH_CHECK(first >= 0 && len >= 0 && first + len <= n_, "sub-vector out of range");
    return VectorView(data_ + first * inc_, len, inc_);
  }

 private:
  T* data_ = nullptr;
  index_t n_ = 0;
  index_t inc_ = 1;
};

/// Non-owning view of a column-major matrix block. `T` may be const.
template <class T>
class MatrixView {
 public:
  using value_type = std::remove_const_t<T>;

  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FTH_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    FTH_CHECK(ld >= std::max<index_t>(1, rows), "leading dimension too small");
  }

  /// Implicit widening from mutable to const view.
  template <class U = T, class = std::enable_if_t<std::is_const_v<U>>>
  MatrixView(const MatrixView<value_type>& other)  // NOLINT(google-explicit-constructor)
      : data_(other.data()), rows_(other.rows()), cols_(other.cols()), ld_(other.ld()) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(index_t i, index_t j) const {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    return data_[i + j * ld_];
  }

  /// m×n sub-block with top-left corner (i, j).
  [[nodiscard]] MatrixView block(index_t i, index_t j, index_t m, index_t n) const {
    FTH_CHECK(i >= 0 && j >= 0 && m >= 0 && n >= 0, "block corner/extent must be non-negative");
    FTH_CHECK(i + m <= rows_ && j + n <= cols_, "block exceeds matrix bounds");
    return MatrixView(data_ + i + j * ld_, m, n, ld_);
  }

  /// Column j as a unit-stride vector.
  [[nodiscard]] VectorView<T> col(index_t j) const {
    FTH_CHECK(j >= 0 && j < cols_, "column index out of range");
    return VectorView<T>(data_ + j * ld_, rows_, 1);
  }

  /// Row i as a stride-ld vector.
  [[nodiscard]] VectorView<T> row(index_t i) const {
    FTH_CHECK(i >= 0 && i < rows_, "row index out of range");
    return VectorView<T>(data_ + i, cols_, ld_);
  }

  /// The main diagonal as a stride-(ld+1) vector.
  [[nodiscard]] VectorView<T> diag() const {
    const index_t n = std::min(rows_, cols_);
    return VectorView<T>(data_, n, ld_ + 1);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

/// Owning column-major dense matrix.
template <class T>
class Matrix {
  static_assert(!std::is_const_v<T>, "Matrix owns storage and must be mutable");

 public:
  using value_type = T;

  Matrix() = default;

  /// rows×cols matrix, zero-initialized.
  Matrix(index_t rows, index_t cols) : rows_(rows), cols_(cols), ld_(std::max<index_t>(1, rows)) {
    FTH_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    storage_.assign(static_cast<std::size_t>(ld_) * static_cast<std::size_t>(cols_), T{});
  }

  /// Deep copy of an arbitrary view (compacts the leading dimension).
  explicit Matrix(MatrixView<const T> src) : Matrix(src.rows(), src.cols()) {
    assign(src);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(index_t i, index_t j) {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    return storage_[static_cast<std::size_t>(i + j * ld_)];
  }
  const T& operator()(index_t i, index_t j) const {
    FTH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    return storage_[static_cast<std::size_t>(i + j * ld_)];
  }

  /// Whole-matrix mutable view.
  [[nodiscard]] MatrixView<T> view() noexcept {
    return MatrixView<T>(storage_.data(), rows_, cols_, ld_);
  }
  /// Whole-matrix const view.
  [[nodiscard]] MatrixView<const T> view() const noexcept {
    return MatrixView<const T>(storage_.data(), rows_, cols_, ld_);
  }
  [[nodiscard]] MatrixView<const T> cview() const noexcept { return view(); }

  /// Sub-block views (delegate to MatrixView::block).
  [[nodiscard]] MatrixView<T> block(index_t i, index_t j, index_t m, index_t n) {
    return view().block(i, j, m, n);
  }
  [[nodiscard]] MatrixView<const T> block(index_t i, index_t j, index_t m, index_t n) const {
    return view().block(i, j, m, n);
  }

  /// Copy the contents of `src` (must match dimensions) into this matrix.
  void assign(MatrixView<const T> src) {
    FTH_CHECK(src.rows() == rows_ && src.cols() == cols_, "assign dimension mismatch");
    for (index_t j = 0; j < cols_; ++j)
      std::copy_n(src.data() + j * src.ld(), rows_, storage_.data() + j * ld_);
  }

  /// Set every element to `value`.
  void fill(T value) { std::fill(storage_.begin(), storage_.end(), value); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  std::vector<T> storage_;
};

/// Copy src into dst (dimensions must match; leading dimensions may differ).
template <class T>
void copy(MatrixView<const T> src, MatrixView<T> dst) {
  FTH_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(), "copy dimension mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.data() + j * src.ld(), src.rows(), dst.data() + j * dst.ld());
}

/// Set every element of a view to `value`.
template <class T>
void fill(MatrixView<T> a, std::remove_const_t<T> value) {
  for (index_t j = 0; j < a.cols(); ++j)
    std::fill_n(a.data() + j * a.ld(), a.rows(), value);
}

/// Set a view to the identity (ones on the diagonal, zeros elsewhere).
template <class T>
void set_identity(MatrixView<T> a) {
  fill(a, T{0});
  const index_t n = std::min(a.rows(), a.cols());
  for (index_t i = 0; i < n; ++i) a(i, i) = T{1};
}

}  // namespace fth

#include "la/generate.hpp"

#include <cmath>

namespace fth {

Matrix<double> random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<double> a(rows, cols);
  Rng rng(seed);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

Matrix<double> random_normal_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<double> a(rows, cols);
  Rng rng(seed);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) a(i, j) = rng.normal();
  return a;
}

Matrix<double> random_symmetric_matrix(index_t n, std::uint64_t seed) {
  Matrix<double> a = random_matrix(n, n, seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

Matrix<double> random_hessenberg_matrix(index_t n, std::uint64_t seed) {
  Matrix<double> a = random_matrix(n, n, seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 2; i < n; ++i) a(i, j) = 0.0;
  return a;
}

Matrix<double> random_diag_dominant_matrix(index_t n, std::uint64_t seed) {
  Matrix<double> a = random_matrix(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Matrix<double> random_graded_matrix(index_t n, std::uint64_t seed, double decades) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double mag = std::pow(10.0, rng.uniform(-decades / 2.0, decades / 2.0));
      a(i, j) = rng.uniform(-1.0, 1.0) * mag;
    }
  }
  return a;
}

Matrix<double> companion_matrix(VectorView<const double> roots) {
  const index_t n = roots.size();
  // Build monic polynomial coefficients from the roots:
  // p(x) = Π (x − r_k) = x^n + c_{n-1} x^{n-1} + ... + c_0.
  std::vector<double> c(static_cast<std::size_t>(n) + 1, 0.0);
  c[0] = 1.0;  // degree-0 polynomial "1"
  index_t deg = 0;
  for (index_t k = 0; k < n; ++k) {
    // multiply by (x − r_k)
    ++deg;
    for (index_t i = deg; i >= 1; --i) c[static_cast<std::size_t>(i)] =
        c[static_cast<std::size_t>(i - 1)] - roots[k] * c[static_cast<std::size_t>(i)];
    c[0] = -roots[k] * c[0];
  }
  // Companion matrix (already upper Hessenberg): sub-diagonal ones, last
  // column −c_0..−c_{n-1}.
  Matrix<double> a(n, n);
  for (index_t i = 1; i < n; ++i) a(i, i - 1) = 1.0;
  for (index_t i = 0; i < n; ++i) a(i, n - 1) = -c[static_cast<std::size_t>(i)];
  return a;
}

}  // namespace fth

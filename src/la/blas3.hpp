// Level-3 BLAS: matrix-matrix kernels (gemm, trmm, trsm, syrk).
//
// gemm is the workhorse of both the baseline and the fault-tolerant
// Hessenberg reduction; it is implemented with the classic Goto-style
// three-level cache blocking (pack A panel, pack B panel, register-tiled
// micro-kernel) and optional OpenMP over the M-panel loop. Everything else
// is a straightforward reference kernel — they sit off the critical path.
#pragma once

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "la/matrix.hpp"

#if FTH_HAVE_OPENMP
#include <omp.h>
#endif

namespace fth::blas {

namespace detail {

// Cache-blocking parameters (doubles; conservative, fit typical L1/L2).
inline constexpr index_t kMC = 128;
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 1024;
inline constexpr index_t kMR = 4;
inline constexpr index_t kNR = 8;

/// Element accessor honouring an optional transpose of op(X) (i, j).
template <class T>
inline T op_at(const MatrixView<const T>& x, Trans t, index_t i, index_t j) {
  return t == Trans::No ? x(i, j) : x(j, i);
}

/// Pack op(A)(i0:i0+mb, k0:k0+kb) into row-panels of height kMR.
template <class T>
void pack_a(const MatrixView<const T>& a, Trans ta, index_t i0, index_t k0, index_t mb,
            index_t kb, T* buf) {
  for (index_t ip = 0; ip < mb; ip += kMR) {
    const index_t mr = std::min(kMR, mb - ip);
    for (index_t k = 0; k < kb; ++k) {
      for (index_t i = 0; i < mr; ++i) *buf++ = op_at(a, ta, i0 + ip + i, k0 + k);
      for (index_t i = mr; i < kMR; ++i) *buf++ = T{0};
    }
  }
}

/// Pack op(B)(k0:k0+kb, j0:j0+nb) into column-panels of width kNR.
template <class T>
void pack_b(const MatrixView<const T>& b, Trans tb, index_t k0, index_t j0, index_t kb,
            index_t nb, T* buf) {
  for (index_t jp = 0; jp < nb; jp += kNR) {
    const index_t nr = std::min(kNR, nb - jp);
    for (index_t k = 0; k < kb; ++k) {
      for (index_t j = 0; j < nr; ++j) *buf++ = op_at(b, tb, k0 + k, j0 + jp + j);
      for (index_t j = nr; j < kNR; ++j) *buf++ = T{0};
    }
  }
}

/// kMR×kNR register-tiled micro-kernel: C(0:mr,0:nr) += alpha · Ap·Bp.
template <class T>
void micro_kernel(index_t kb, T alpha, const T* ap, const T* bp, MatrixView<T>& c, index_t i0,
                  index_t j0, index_t mr, index_t nr) {
  T acc[kMR][kNR] = {};
  for (index_t k = 0; k < kb; ++k) {
    const T* arow = ap + k * kMR;
    const T* brow = bp + k * kNR;
    for (index_t i = 0; i < kMR; ++i) {
      const T ai = arow[i];
      for (index_t j = 0; j < kNR; ++j) acc[i][j] += ai * brow[j];
    }
  }
  T* cd = c.data();
  const index_t ldc = c.ld();
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i) cd[(i0 + i) + (j0 + j) * ldc] += alpha * acc[i][j];
}

/// Naive triple loop for small problems (avoids packing overhead).
template <class T>
void gemm_naive(Trans ta, Trans tb, T alpha, MatrixView<const T> a, MatrixView<const T> b,
                MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t l = 0; l < k; ++l) {
      const T blj = alpha * op_at(b, tb, l, j);
      if (blj == T{0}) continue;
      if (ta == Trans::No) {
        const T* acol = a.data() + l * a.ld();
        T* ccol = c.data() + j * c.ld();
        for (index_t i = 0; i < m; ++i) ccol[i] += acol[i] * blj;
      } else {
        T* ccol = c.data() + j * c.ld();
        for (index_t i = 0; i < m; ++i) ccol[i] += a(l, i) * blj;
      }
    }
  }
}

}  // namespace detail

/// gemm: C ← alpha·op(A)·op(B) + beta·C.
template <class T>
void gemm(Trans ta, Trans tb, T alpha, MatrixView<const T> a, MatrixView<const T> b, T beta,
          MatrixView<T> c) {
  using namespace detail;
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  {
    const index_t am = (ta == Trans::No) ? a.rows() : a.cols();
    const index_t bk = (tb == Trans::No) ? b.rows() : b.cols();
    const index_t bn = (tb == Trans::No) ? b.cols() : b.rows();
    FTH_CHECK(am == m && bk == k && bn == n, "gemm dimension mismatch");
  }

  // beta-scale C first so the accumulation path is uniform.
  if (beta == T{0}) {
    fill(c, T{0});
  } else if (beta != T{1}) {
    for (index_t j = 0; j < n; ++j) {
      T* col = c.data() + j * c.ld();
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) {
    flops::add(flops::gemm(m, n, k));
    return;
  }

  if (static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) < 32.0 * 32.0 * 32.0) {
    gemm_naive(ta, tb, alpha, a, b, c);
    flops::add(flops::gemm(m, n, k));
    return;
  }

  std::vector<T> apack(static_cast<std::size_t>(kMC + kMR) * kKC);
  std::vector<T> bpack(static_cast<std::size_t>(kKC) * (kNC + kNR));

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nb = std::min(kNC, n - jc);
    for (index_t kc = 0; kc < k; kc += kKC) {
      const index_t kb = std::min(kKC, k - kc);
      pack_b(b, tb, kc, jc, kb, nb, bpack.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mb = std::min(kMC, m - ic);
        pack_a(a, ta, ic, kc, mb, kb, apack.data());
        for (index_t jr = 0; jr < nb; jr += kNR) {
          const index_t nr = std::min(kNR, nb - jr);
          const T* bp = bpack.data() + (jr / kNR) * kb * kNR;
          for (index_t ir = 0; ir < mb; ir += kMR) {
            const index_t mr = std::min(kMR, mb - ir);
            const T* ap = apack.data() + (ir / kMR) * kb * kMR;
            micro_kernel(kb, alpha, ap, bp, c, ic + ir, jc + jr, mr, nr);
          }
        }
      }
    }
  }
  flops::add(flops::gemm(m, n, k));
}

/// trmm: B ← alpha·op(A)·B (Side::Left) or alpha·B·op(A) (Side::Right),
/// with A triangular.
template <class T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, MatrixView<const T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  FTH_CHECK(a.rows() == na && a.cols() == na, "trmm dimension mismatch");
  const bool unit = diag == Diag::Unit;
  const bool lower = uplo == Uplo::Lower;

  if (side == Side::Left) {
    // B(:,j) ← alpha·op(A)·B(:,j), column by column via trmv semantics.
    for (index_t j = 0; j < n; ++j) {
      if (trans == Trans::No) {
        if (lower) {
          for (index_t i = m - 1; i >= 0; --i) {
            T acc = unit ? b(i, j) : a(i, i) * b(i, j);
            for (index_t l = 0; l < i; ++l) acc += a(i, l) * b(l, j);
            b(i, j) = alpha * acc;
          }
        } else {
          for (index_t i = 0; i < m; ++i) {
            T acc = unit ? b(i, j) : a(i, i) * b(i, j);
            for (index_t l = i + 1; l < m; ++l) acc += a(i, l) * b(l, j);
            b(i, j) = alpha * acc;
          }
        }
      } else {
        if (lower) {
          for (index_t i = 0; i < m; ++i) {
            T acc = unit ? b(i, j) : a(i, i) * b(i, j);
            for (index_t l = i + 1; l < m; ++l) acc += a(l, i) * b(l, j);
            b(i, j) = alpha * acc;
          }
        } else {
          for (index_t i = m - 1; i >= 0; --i) {
            T acc = unit ? b(i, j) : a(i, i) * b(i, j);
            for (index_t l = 0; l < i; ++l) acc += a(l, i) * b(l, j);
            b(i, j) = alpha * acc;
          }
        }
      }
    }
  } else {
    // Right side: B ← alpha·B·op(A). Process column blocks of the result.
    // new B(:,j) = alpha Σ_l B(:,l) · op(A)(l,j).
    const bool effective_lower = (trans == Trans::No) ? lower : !lower;
    if (effective_lower) {
      // op(A) lower triangular: result column j uses source columns l >= j,
      // sweep left-to-right so sources are unmodified when read.
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          const T d = unit ? T{1} : detail::op_at(a, trans, j, j);
          T acc = b(i, j) * d;
          for (index_t l = j + 1; l < n; ++l) acc += b(i, l) * detail::op_at(a, trans, l, j);
          b(i, j) = alpha * acc;
        }
      }
    } else {
      // op(A) upper triangular: column j uses source columns l <= j,
      // sweep right-to-left.
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t i = 0; i < m; ++i) {
          const T d = unit ? T{1} : detail::op_at(a, trans, j, j);
          T acc = b(i, j) * d;
          for (index_t l = 0; l < j; ++l) acc += b(i, l) * detail::op_at(a, trans, l, j);
          b(i, j) = alpha * acc;
        }
      }
    }
  }
  flops::add(static_cast<std::uint64_t>(m) * n * na);
}

/// trsm: solve op(A)·X = alpha·B (Side::Left) or X·op(A) = alpha·B
/// (Side::Right) with A triangular; X overwrites B.
template <class T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, MatrixView<const T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  FTH_CHECK(a.rows() == na && a.cols() == na, "trsm dimension mismatch");
  const bool unit = diag == Diag::Unit;

  if (alpha != T{1}) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) *= alpha;
  }

  if (side == Side::Left) {
    const bool forward = (uplo == Uplo::Lower) == (trans == Trans::No);
    for (index_t j = 0; j < n; ++j) {
      if (forward) {
        for (index_t i = 0; i < m; ++i) {
          T acc = b(i, j);
          for (index_t l = 0; l < i; ++l) acc -= detail::op_at(a, trans, i, l) * b(l, j);
          b(i, j) = unit ? acc : acc / detail::op_at(a, trans, i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T acc = b(i, j);
          for (index_t l = i + 1; l < m; ++l) acc -= detail::op_at(a, trans, i, l) * b(l, j);
          b(i, j) = unit ? acc : acc / detail::op_at(a, trans, i, i);
        }
      }
    }
  } else {
    // X·op(A) = B  ⇒ column j of X solved once columns feeding it are done.
    const bool effective_upper = (uplo == Uplo::Upper) == (trans == Trans::No);
    if (effective_upper) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t l = 0; l < j; ++l) {
          const T alj = detail::op_at(a, trans, l, j);
          if (alj == T{0}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
        }
        if (!unit) {
          const T d = detail::op_at(a, trans, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    } else {
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t l = j + 1; l < n; ++l) {
          const T alj = detail::op_at(a, trans, l, j);
          if (alj == T{0}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * alj;
        }
        if (!unit) {
          const T d = detail::op_at(a, trans, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    }
  }
  flops::add(static_cast<std::uint64_t>(m) * n * na);
}

/// syr2k: C ← alpha·(A·Bᵀ + B·Aᵀ) + beta·C (Trans::No; Trans::Yes swaps the
/// transposes), updating only the `uplo` triangle of C. The trailing update
/// of the blocked tridiagonal reduction (A −= V·Wᵀ + W·Vᵀ).
template <class T>
void syr2k(Uplo uplo, Trans trans, T alpha, MatrixView<const T> a, MatrixView<const T> b,
           T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  FTH_CHECK(c.cols() == n, "syr2k requires square C");
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  const index_t an = (trans == Trans::No) ? a.rows() : a.cols();
  const index_t bn = (trans == Trans::No) ? b.rows() : b.cols();
  const index_t bk = (trans == Trans::No) ? b.cols() : b.rows();
  FTH_CHECK(an == n && bn == n && bk == k, "syr2k dimension mismatch");

  // Fast path for the shape the tridiagonal reduction uses: No-trans,
  // blocked into diagonal triangles (naive) + sub-diagonal rectangles
  // (two gemms each, reusing the cache-blocked kernel).
  if (trans == Trans::No && n >= 32) {
    constexpr index_t cb = 64;
    for (index_t j0 = 0; j0 < n; j0 += cb) {
      const index_t jb = std::min(cb, n - j0);
      // Diagonal block: the referenced triangle only.
      for (index_t j = j0; j < j0 + jb; ++j) {
        const index_t ilo = (uplo == Uplo::Lower) ? j : j0;
        const index_t ihi = (uplo == Uplo::Lower) ? j0 + jb : j + 1;
        for (index_t i = ilo; i < ihi; ++i) {
          T acc{};
          for (index_t l = 0; l < k; ++l) acc += a(i, l) * b(j, l) + b(i, l) * a(j, l);
          c(i, j) = alpha * acc + (beta == T{0} ? T{0} : beta * c(i, j));
        }
      }
      // Off-diagonal rectangle: full gemm pair.
      const index_t ri = (uplo == Uplo::Lower) ? j0 + jb : 0;
      const index_t rm = (uplo == Uplo::Lower) ? n - j0 - jb : j0;
      if (rm > 0) {
        auto cblk = c.block(ri, j0, rm, jb);
        gemm(Trans::No, Trans::Yes, alpha, a.block(ri, 0, rm, k), b.block(j0, 0, jb, k),
             beta, cblk);
        gemm(Trans::No, Trans::Yes, alpha, b.block(ri, 0, rm, k), a.block(j0, 0, jb, k),
             T{1}, cblk);
      }
    }
    return;  // gemm accounted its own FLOPs; the triangles are O(n·cb·k) extra
  }

  for (index_t j = 0; j < n; ++j) {
    const index_t ilo = (uplo == Uplo::Lower) ? j : 0;
    const index_t ihi = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ilo; i < ihi; ++i) {
      T acc{};
      for (index_t l = 0; l < k; ++l) {
        acc += detail::op_at(a, trans, i, l) * detail::op_at(b, trans, j, l) +
               detail::op_at(b, trans, i, l) * detail::op_at(a, trans, j, l);
      }
      c(i, j) = alpha * acc + (beta == T{0} ? T{0} : beta * c(i, j));
    }
  }
  flops::add(2ull * static_cast<std::uint64_t>(n) * n * k);
}

/// syrk: C ← alpha·A·Aᵀ + beta·C (Trans::No) or alpha·Aᵀ·A + beta·C,
/// updating only the `uplo` triangle of C.
template <class T>
void syrk(Uplo uplo, Trans trans, T alpha, MatrixView<const T> a, T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  FTH_CHECK(c.cols() == n, "syrk requires square C");
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  const index_t an = (trans == Trans::No) ? a.rows() : a.cols();
  FTH_CHECK(an == n, "syrk dimension mismatch");

  for (index_t j = 0; j < n; ++j) {
    const index_t ilo = (uplo == Uplo::Lower) ? j : 0;
    const index_t ihi = (uplo == Uplo::Lower) ? n : j + 1;
    for (index_t i = ilo; i < ihi; ++i) {
      T acc{};
      for (index_t l = 0; l < k; ++l)
        acc += detail::op_at(a, trans, i, l) * detail::op_at(a, trans, j, l);
      c(i, j) = alpha * acc + (beta == T{0} ? T{0} : beta * c(i, j));
    }
  }
  flops::add(static_cast<std::uint64_t>(n) * n * k);
}

}  // namespace fth::blas

// Test/benchmark matrix generators.
#pragma once

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace fth {

/// Uniform random matrix with entries in [-1, 1).
Matrix<double> random_matrix(index_t rows, index_t cols, std::uint64_t seed);

/// Standard-normal random matrix.
Matrix<double> random_normal_matrix(index_t rows, index_t cols, std::uint64_t seed);

/// Symmetric matrix (A + Aᵀ)/2 from a uniform random base.
Matrix<double> random_symmetric_matrix(index_t n, std::uint64_t seed);

/// Random matrix already in upper Hessenberg form.
Matrix<double> random_hessenberg_matrix(index_t n, std::uint64_t seed);

/// Diagonally dominant random matrix (well-conditioned).
Matrix<double> random_diag_dominant_matrix(index_t n, std::uint64_t seed);

/// Matrix with entries spanning `decades` orders of magnitude — stresses
/// the detection threshold scaling.
Matrix<double> random_graded_matrix(index_t n, std::uint64_t seed, double decades);

/// Companion matrix of the monic polynomial with the given roots; its
/// eigenvalues are exactly the roots (used by the eigen-solver tests).
Matrix<double> companion_matrix(VectorView<const double> roots);

}  // namespace fth

// Level-1 BLAS: vector-vector kernels.
//
// Reference-quality templated kernels; all take VectorView so arbitrary
// strides (rows of column-major matrices) work. FLOPs are accounted at
// call granularity via fth::flops.
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "la/matrix.hpp"

namespace fth::blas {

/// dot: xᵀy.
template <class T>
T dot(VectorView<const T> x, VectorView<const T> y) {
  FTH_CHECK(x.size() == y.size(), "dot length mismatch");
  T acc{};
  for (index_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  flops::add(x.empty() ? 0 : 2ull * x.size() - 1);
  return acc;
}

/// axpy: y ← alpha·x + y.
template <class T>
void axpy(T alpha, VectorView<const T> x, VectorView<T> y) {
  FTH_CHECK(x.size() == y.size(), "axpy length mismatch");
  if (alpha == T{0}) return;
  for (index_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  flops::add(2ull * x.size());
}

/// scal: x ← alpha·x.
template <class T>
void scal(T alpha, VectorView<T> x) {
  for (index_t i = 0; i < x.size(); ++i) x[i] *= alpha;
  flops::add(static_cast<std::uint64_t>(x.size()));
}

/// copy: y ← x.
template <class T>
void copy(VectorView<const T> x, VectorView<T> y) {
  FTH_CHECK(x.size() == y.size(), "copy length mismatch");
  for (index_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// swap: x ↔ y.
template <class T>
void swap(VectorView<T> x, VectorView<T> y) {
  FTH_CHECK(x.size() == y.size(), "swap length mismatch");
  for (index_t i = 0; i < x.size(); ++i) {
    const T t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

/// nrm2: ‖x‖₂, computed with scaling to avoid overflow/underflow
/// (the classic LAPACK dlassq recurrence).
template <class T>
T nrm2(VectorView<const T> x) {
  T scale{0};
  T ssq{1};
  for (index_t i = 0; i < x.size(); ++i) {
    const T xi = x[i];
    if (xi == T{0}) continue;
    const T axi = std::abs(xi);
    if (scale < axi) {
      const T r = scale / axi;
      ssq = T{1} + ssq * r * r;
      scale = axi;
    } else {
      const T r = axi / scale;
      ssq += r * r;
    }
  }
  flops::add(2ull * x.size());
  return scale * std::sqrt(ssq);
}

/// asum: Σ|xᵢ|.
template <class T>
T asum(VectorView<const T> x) {
  T acc{};
  for (index_t i = 0; i < x.size(); ++i) acc += std::abs(x[i]);
  flops::add(static_cast<std::uint64_t>(x.size()));
  return acc;
}

/// iamax: index of the element with the largest magnitude (-1 if empty).
template <class T>
index_t iamax(VectorView<const T> x) {
  index_t best = -1;
  T best_val{-1};
  for (index_t i = 0; i < x.size(); ++i) {
    const T a = std::abs(x[i]);
    if (a > best_val) {
      best_val = a;
      best = i;
    }
  }
  return best;
}

/// sum: Σxᵢ (checksum building block; plain left-to-right accumulation,
/// matching the paper's dot-product-based encoding).
template <class T>
T sum(VectorView<const T> x) {
  T acc{};
  for (index_t i = 0; i < x.size(); ++i) acc += x[i];
  flops::add(x.empty() ? 0 : static_cast<std::uint64_t>(x.size()) - 1);
  return acc;
}

}  // namespace fth::blas

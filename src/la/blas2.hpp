// Level-2 BLAS: matrix-vector kernels (gemv, ger, trmv, trsv).
#pragma once

#include "common/error.hpp"
#include "common/flops.hpp"
#include "la/matrix.hpp"

namespace fth::blas {

/// gemv: y ← alpha·op(A)·x + beta·y.
template <class T>
void gemv(Trans trans, T alpha, MatrixView<const T> a, VectorView<const T> x, T beta,
          VectorView<T> y) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (trans == Trans::No) {
    FTH_CHECK(x.size() == n && y.size() == m, "gemv dimension mismatch");
  } else {
    FTH_CHECK(x.size() == m && y.size() == n, "gemv dimension mismatch");
  }

  if (beta == T{0}) {
    for (index_t i = 0; i < y.size(); ++i) y[i] = T{0};
  } else if (beta != T{1}) {
    for (index_t i = 0; i < y.size(); ++i) y[i] *= beta;
  }
  if (alpha == T{0} || m == 0 || n == 0) return;

  const T* ad = a.data();
  const index_t ld = a.ld();
  if (trans == Trans::No) {
    // Column-sweep: y += alpha * x[j] * A(:,j). Unit-stride on A and y.
    if (y.inc() == 1) {
      T* yd = y.data();
      for (index_t j = 0; j < n; ++j) {
        const T axj = alpha * x[j];
        if (axj == T{0}) continue;
        const T* col = ad + j * ld;
        for (index_t i = 0; i < m; ++i) yd[i] += axj * col[i];
      }
    } else {
      for (index_t j = 0; j < n; ++j) {
        const T axj = alpha * x[j];
        if (axj == T{0}) continue;
        const T* col = ad + j * ld;
        for (index_t i = 0; i < m; ++i) y[i] += axj * col[i];
      }
    }
  } else {
    // y[j] += alpha * A(:,j)ᵀ x. Unit-stride dot along each column.
    if (x.inc() == 1) {
      const T* xd = x.data();
      for (index_t j = 0; j < n; ++j) {
        const T* col = ad + j * ld;
        T acc{};
        for (index_t i = 0; i < m; ++i) acc += col[i] * xd[i];
        y[j] += alpha * acc;
      }
    } else {
      for (index_t j = 0; j < n; ++j) {
        const T* col = ad + j * ld;
        T acc{};
        for (index_t i = 0; i < m; ++i) acc += col[i] * x[i];
        y[j] += alpha * acc;
      }
    }
  }
  flops::add(flops::gemv(m, n));
}

/// ger: A ← alpha·x·yᵀ + A.
template <class T>
void ger(T alpha, VectorView<const T> x, VectorView<const T> y, MatrixView<T> a) {
  FTH_CHECK(x.size() == a.rows() && y.size() == a.cols(), "ger dimension mismatch");
  if (alpha == T{0}) return;
  T* ad = a.data();
  const index_t ld = a.ld();
  const index_t m = a.rows();
  for (index_t j = 0; j < a.cols(); ++j) {
    const T ayj = alpha * y[j];
    if (ayj == T{0}) continue;
    T* col = ad + j * ld;
    if (x.inc() == 1) {
      const T* xd = x.data();
      for (index_t i = 0; i < m; ++i) col[i] += xd[i] * ayj;
    } else {
      for (index_t i = 0; i < m; ++i) col[i] += x[i] * ayj;
    }
  }
  flops::add(flops::gemv(a.rows(), a.cols()));
}

/// symv: y ← alpha·A·x + beta·y with A symmetric, only the `uplo` triangle
/// referenced (the other triangle is implied by symmetry and never read).
template <class T>
void symv(Uplo uplo, T alpha, MatrixView<const T> a, VectorView<const T> x, T beta,
          VectorView<T> y) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "symv requires a square matrix");
  FTH_CHECK(x.size() == n && y.size() == n, "symv dimension mismatch");

  if (beta == T{0}) {
    for (index_t i = 0; i < n; ++i) y[i] = T{0};
  } else if (beta != T{1}) {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
  if (alpha == T{0} || n == 0) return;

  // Column sweep touching each stored element once: the stored (i, j)
  // contributes to y[i] (as A(i,j)·x[j]) and to y[j] (as A(j,i)·x[i]).
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      const T axj = alpha * x[j];
      T acc{};
      y[j] += axj * a(j, j);
      for (index_t i = j + 1; i < n; ++i) {
        const T aij = a(i, j);
        y[i] += axj * aij;
        acc += aij * x[i];
      }
      y[j] += alpha * acc;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T axj = alpha * x[j];
      T acc{};
      for (index_t i = 0; i < j; ++i) {
        const T aij = a(i, j);
        y[i] += axj * aij;
        acc += aij * x[i];
      }
      y[j] += axj * a(j, j) + alpha * acc;
    }
  }
  flops::add(2ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
}

/// syr2: A ← alpha·(x·yᵀ + y·xᵀ) + A, updating only the `uplo` triangle.
template <class T>
void syr2(Uplo uplo, T alpha, VectorView<const T> x, VectorView<const T> y,
          MatrixView<T> a) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "syr2 requires a square matrix");
  FTH_CHECK(x.size() == n && y.size() == n, "syr2 dimension mismatch");
  if (alpha == T{0}) return;
  for (index_t j = 0; j < n; ++j) {
    const T axj = alpha * x[j];
    const T ayj = alpha * y[j];
    const index_t ilo = uplo == Uplo::Lower ? j : 0;
    const index_t ihi = uplo == Uplo::Lower ? n : j + 1;
    for (index_t i = ilo; i < ihi; ++i) a(i, j) += x[i] * ayj + y[i] * axj;
  }
  flops::add(2ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
}

/// trmv: x ← op(A)·x with A triangular.
template <class T>
void trmv(Uplo uplo, Trans trans, Diag diag, MatrixView<const T> a, VectorView<T> x) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "trmv requires a square matrix");
  FTH_CHECK(x.size() == n, "trmv dimension mismatch");
  const bool unit = diag == Diag::Unit;
  const bool lower = uplo == Uplo::Lower;

  if (trans == Trans::No) {
    if (lower) {
      // x_i depends on x_0..x_i: sweep bottom-up.
      for (index_t i = n - 1; i >= 0; --i) {
        T acc = unit ? x[i] : a(i, i) * x[i];
        for (index_t j = 0; j < i; ++j) acc += a(i, j) * x[j];
        x[i] = acc;
      }
    } else {
      for (index_t i = 0; i < n; ++i) {
        T acc = unit ? x[i] : a(i, i) * x[i];
        for (index_t j = i + 1; j < n; ++j) acc += a(i, j) * x[j];
        x[i] = acc;
      }
    }
  } else {
    if (lower) {
      // (Aᵀx)_i = Σ_{k>=i} A(k,i) x_k: sweep top-down.
      for (index_t i = 0; i < n; ++i) {
        T acc = unit ? x[i] : a(i, i) * x[i];
        for (index_t k = i + 1; k < n; ++k) acc += a(k, i) * x[k];
        x[i] = acc;
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T acc = unit ? x[i] : a(i, i) * x[i];
        for (index_t k = 0; k < i; ++k) acc += a(k, i) * x[k];
        x[i] = acc;
      }
    }
  }
  flops::add(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
}

/// trsv: solve op(A)·x = b in place (x ← op(A)⁻¹·x) with A triangular.
template <class T>
void trsv(Uplo uplo, Trans trans, Diag diag, MatrixView<const T> a, VectorView<T> x) {
  const index_t n = a.rows();
  FTH_CHECK(a.cols() == n, "trsv requires a square matrix");
  FTH_CHECK(x.size() == n, "trsv dimension mismatch");
  const bool unit = diag == Diag::Unit;
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);

  if (trans == Trans::No) {
    if (lower) {
      for (index_t i = 0; i < n; ++i) {
        T acc = x[i];
        for (index_t j = 0; j < i; ++j) acc -= a(i, j) * x[j];
        x[i] = unit ? acc : acc / a(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T acc = x[i];
        for (index_t j = i + 1; j < n; ++j) acc -= a(i, j) * x[j];
        x[i] = unit ? acc : acc / a(i, i);
      }
    }
  } else {
    // Solve Aᵀx = b: forward/backward substitution on columns of A.
    if (uplo == Uplo::Upper) {
      for (index_t i = 0; i < n; ++i) {
        T acc = x[i];
        for (index_t k = 0; k < i; ++k) acc -= a(k, i) * x[k];
        x[i] = unit ? acc : acc / a(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T acc = x[i];
        for (index_t k = i + 1; k < n; ++k) acc -= a(k, i) * x[k];
        x[i] = unit ? acc : acc / a(i, i);
      }
    }
  }
  flops::add(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
}

}  // namespace fth::blas
